// Package clusterdes is the request-level counterpart of the
// interval-granularity cluster layer: one discrete-event simulation
// spanning the whole fleet. Requests are generated fleet-wide from the
// datacenter load pattern, routed to a node at arrival time through the
// same pluggable splitters the interval mode uses, and carry their
// latency end to end through per-node queues and server pools — so
// cross-node queueing, which the interval model collapses into one
// aggregate tail number per node, is visible request by request. That
// visibility is what enables the three features the interval mode
// cannot express: straggler mitigation on in-flight requests (hedged
// requests and cross-node work stealing), node warm-up after an
// autoscale activation (a woken node serving nothing, or at a degraded
// rate, for k intervals while its queue builds), and a queue-depth
// autoscale signal that sees the queue forming instead of waiting for
// last interval's tail to cross the target.
//
// The whole event loop runs serially in event-time order — routing,
// hedging and stealing decisions happen at deterministic points of one
// totally ordered event sequence — so a run is a pure function of its
// seed. Workers only parallelise the per-node interval summaries
// (sorting sojourns, power evaluation) at interval boundaries, where
// each node's summary is an independent pure computation writing its
// own slot; results are therefore bit-identical at any worker count,
// the same two invariants the interval-mode cluster guarantees.
//
// With Options.Learn set, the DES additionally closes Hipster's RL
// loop at request granularity: each node consults a per-node policy
// (by default the hybrid heuristic+RL manager) at every interval
// boundary, in the coordinator's serial section, observing the
// interval's MEASURED tail latency — not the analytic estimate the
// interval mode trains against — and reconfigures its core mapping and
// DVFS for the next interval. Reconfiguration uses a fixed-slot server
// layout: disabled cores drain their in-flight request and then stop
// pulling work, so no event is ever invalidated and the learning runs
// keep the exact determinism contract of fixed-configuration runs.
package clusterdes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"hipster/internal/autoscale"
	"hipster/internal/cluster"
	"hipster/internal/faults"
	"hipster/internal/federation"
	"hipster/internal/loadgen"
	"hipster/internal/platform"
	"hipster/internal/policy"
	"hipster/internal/queueing"
	"hipster/internal/resilience"
	"hipster/internal/sim"
	"hipster/internal/stats"
	"hipster/internal/telemetry"
	"hipster/internal/workload"
)

// NodeConfig describes one node of the DES fleet. Without
// Options.Learn there is no per-node policy loop: the DES answers
// routing and queueing questions at a fixed configuration per node,
// which keeps every latency difference attributable to the front-end
// decision under study (splitter, mitigation, scaling signal) rather
// than to DVFS reactions. With Options.Learn set, Config is only the
// starting configuration — each node's policy re-picks its operating
// point every interval.
type NodeConfig struct {
	Spec     *platform.Spec
	Workload *workload.Model
	// Config is the node's fixed core/DVFS configuration (default: all
	// big cores at maximum DVFS).
	Config *platform.Config
}

// AutoscaleOptions enable elastic sizing of the DES fleet, reusing the
// interval mode's controller (bounds, cooldown, hysteresis) and scaling
// policies. Two things differ from the interval mode, both only
// expressible at request granularity. First, the policy's OfferedRPS is
// the MEASURED arrival rate of the previous interval, not the pattern's
// demand for the coming one — the DES autoscaler is an observer, not
// clairvoyant. Second, activation is not free: a woken node spends
// WarmupIntervals intervals degraded to WarmupFactor of its service
// rate (0 = serves nothing) while the splitter, which routes by nominal
// capacity, keeps sending it traffic — the queue that builds is the
// transient CloudCoaster-style schedulers plan around, and mitigation
// policies act on.
type AutoscaleOptions struct {
	// Policy proposes the desired active count each interval (default
	// autoscale.TargetUtilization{}).
	Policy autoscale.Policy
	// MinNodes and MaxNodes bound the active count (defaults 1 and the
	// roster size).
	MinNodes, MaxNodes int
	// InitialNodes is the active count before the first interval
	// (default MinNodes). Initial nodes start warm.
	InitialNodes int
	// CooldownIntervals and DownAfterIntervals are the controller's
	// scale-down cooldown and hysteresis (defaults 5 and 3).
	CooldownIntervals, DownAfterIntervals int
	// WarmupIntervals is how many intervals an activated node serves
	// degraded (default 0 = joins warm, matching the interval mode).
	WarmupIntervals int
	// WarmupFactor is the fraction of its service rate a warming node
	// retains, in [0, 1): 0 means a warming node serves nothing and
	// only queues (default 0).
	WarmupFactor float64
}

// Options configure a cluster-scale discrete-event run.
type Options struct {
	// Nodes is the fleet definition; at least one node.
	Nodes []NodeConfig

	// Pattern is the datacenter-level offered load as a fraction of
	// total fleet capacity (the sum of node configuration capacities).
	Pattern loadgen.Pattern

	// Splitter carves the fleet arrival rate into per-node routing
	// weights each interval; each request then picks its node by one
	// draw over those weights (default cluster.WeightedByCapacity).
	Splitter cluster.Splitter

	// Mitigation is the straggler-mitigation policy (default None).
	Mitigation Mitigation

	// Workers parallelises the per-node interval summaries and, in a
	// sharded run, the per-domain event loops; 0 means GOMAXPROCS.
	// Results do not depend on this value.
	Workers int

	// Domains shards the roster into this many routing domains, each a
	// contiguous block of nodes with its own event loop and RNG streams
	// (derived from Seed+domain). Domains step in parallel on the
	// worker pool; cross-domain effects — steals, hedge copies landing
	// in another domain, autoscale roster changes — are exchanged only
	// at interval boundaries, so the run is a pure function of (Seed,
	// Domains) at any worker count. 0 runs the classic serial loop;
	// 1 runs the sharded machinery over a single fleet-wide domain,
	// which is bit-identical to the serial loop. Must not exceed the
	// roster size.
	Domains int

	// IntervalSecs is the monitoring interval (default 1 s).
	IntervalSecs float64

	// Seed fully determines the run (arrival, routing and service-time
	// streams are derived sub-streams).
	Seed int64

	// StragglerFactor is forwarded to the fleet telemetry merge
	// (default telemetry.DefaultStragglerFactor).
	StragglerFactor float64

	// Autoscale, when non-nil, grows and shrinks the active node set.
	Autoscale *AutoscaleOptions

	// MaxQueue bounds each node's request queue; arrivals beyond it are
	// dropped and counted (0 derives a bound from the workload's
	// BacklogCapSecs, mirroring the single-node DES).
	MaxQueue int

	// Learn, when non-nil, closes the RL loop inside the DES: each node
	// consults its own policy at every interval boundary (in the
	// coordinator's serial section) and reconfigures for the next
	// interval, learning from the interval's measured request tail. The
	// run stays a pure function of (Seed, Domains) at any worker count.
	Learn *LearnOptions

	// Faults, when non-nil with any fault class enabled, injects a
	// seeded deterministic fault schedule into the run: node crashes
	// that lose queued and in-flight work (the Lost disposition), slow
	// nodes serving at a degraded rate, network partitions severing
	// cross-side steals/hedges/migrations and federation syncs, and
	// spot-pool revocations drained through their notice window. Every
	// injection and recovery transition fires in the coordinator's
	// serial section, and the schedule is drawn up front from its own
	// sub-stream of Seed — so fault-enabled runs remain a pure function
	// of (Seed, Domains) at any worker count.
	Faults *faults.Options

	// Resilience, when non-nil with any feature enabled, adds
	// request-path failure policies: bounded retries with seeded-jitter
	// exponential backoff, per-attempt deadlines (a timed-out request
	// frees its server slot and retries or counts timed out), per-node
	// token-bucket admission limiting and circuit breakers, hedge-copy
	// cancellation, and per-node hedge budgets. Every policy decision
	// fires inside the event loop or the coordinator's serial section
	// (breaker windows roll and hedge budgets reset only at interval
	// boundaries), so resilience-enabled runs keep the pure-function-of-
	// (Seed, Domains) contract at any worker count.
	Resilience *resilience.Options
}

// LatencySummary is the end-to-end request-latency distribution of a
// run — the number the interval mode cannot produce, since it never
// sees an individual request cross the splitter.
type LatencySummary struct {
	Completed int
	Dropped   int
	// TimedOut counts requests whose final attempt's deadline expired
	// with no retry budget left (resilience timeouts only; always zero
	// without them).
	TimedOut int
	// Lost counts requests destroyed by an injected node crash or
	// revocation — every copy sat on the dying node and nothing (hedge
	// timer, deadline, second copy) remained to revive them. Always
	// zero without Options.Faults.
	Lost int
	Mean float64
	P50  float64
	P90  float64
	P95  float64
	P99  float64
}

// Stats counts the DES fleet's mitigation and scaling activity.
type Stats struct {
	// Requests counts primary arrivals offered to the fleet (every
	// request is eventually completed, counted dropped, counted timed
	// out, or counted lost — the conservation law the fleettest battery
	// asserts).
	Requests int
	// Hedges counts hedge copies issued; HedgeWins how many completed
	// before the primary.
	Hedges, HedgeWins int
	// Steals counts cross-node work steals.
	Steals int
	// CrossDomainHedges, CrossDomainSteals and CrossDomainMigrations
	// count the boundary exchanges of a sharded run: hedge copies
	// placed in another routing domain, steals across a domain
	// boundary, and scale-down migrations that moved a request between
	// domains. Always zero in a serial (Domains <= 1) run.
	CrossDomainHedges, CrossDomainSteals, CrossDomainMigrations int
	// Migrated counts queued requests re-routed off a deactivating node.
	Migrated int
	// Ups/Downs/NodesAdded/NodesRemoved count autoscale events.
	Ups, Downs, NodesAdded, NodesRemoved int
	// FirstScaleUpInterval is the monitoring interval of the first
	// scale-up (-1 if the fleet never grew) — what the queue-depth vs
	// tail-signal comparison measures.
	FirstScaleUpInterval int
	// WarmupIntervals is the node-intervals spent warming.
	WarmupIntervals int
	// PeakActive and MinActive bracket the active count.
	PeakActive, MinActive int
	// NodeIntervals is the active node-intervals consumed.
	NodeIntervals int
	// LearnDecisions counts per-node policy decisions taken at interval
	// boundaries (Learn enabled; zero otherwise). CoreMigrations counts
	// decisions that changed the core mapping (NBig/NSmall);
	// DVFSChanges counts decisions that only changed frequency.
	LearnDecisions, CoreMigrations, DVFSChanges int
	// SyncRounds, WarmStarts and Flushes count federation activity when
	// Learn.Federation is set: boundary sync rounds run, activating
	// nodes seeded from the fleet table, and departing nodes folding
	// their delta in.
	SyncRounds, WarmStarts, Flushes int
	// Resilience activity (Options.Resilience; all zero without it).
	// Retries counts re-issued attempts; Timeouts counts per-attempt
	// deadline expiries (a request can time out several times before
	// completing on a retry — requests finally lost to a deadline are
	// Latency.TimedOut); BreakerOpens counts circuit-breaker open (and
	// re-open) transitions; RateLimited counts token-bucket admission
	// rejections; HedgeCancels counts losing hedge copies cancelled
	// mid-service.
	Retries, Timeouts, BreakerOpens, RateLimited, HedgeCancels int
	// Fault-injection activity (Options.Faults; all zero without it).
	// Crashes counts node crashes, Revocations spot-pool notices,
	// Partitions partition onsets, SlowOnsets slow-node episodes; Lost
	// mirrors Latency.Lost.
	Crashes, Revocations, Partitions, SlowOnsets, Lost int
	// Predictive-mitigation activity (the Predictive mitigation; zero
	// otherwise): suspect node-intervals flagged by the EWMA detector,
	// queued requests proactively migrated off flagged nodes, and the
	// monitoring interval of the first flag (-1 if none fired) — the
	// number the predictive-vs-reactive comparison measures.
	PredFlags, PredMigrations int
	FirstPredictInterval      int
}

// Result bundles a finished DES run.
type Result struct {
	Fleet   *telemetry.FleetTrace
	Nodes   []*telemetry.Trace
	Latency LatencySummary
	Stats   Stats
}

// Summarize computes the fleet's headline metrics.
func (r Result) Summarize() telemetry.FleetSummary { return r.Fleet.Summarize() }

// Event kinds of the fleet event loop. Fleet arrivals and interval
// ticks are not heap events — each is a single strictly increasing
// scalar next-time, merged into the loop by comparison.
const (
	evCompletion = iota // node a, server b, service sequence c
	evHedge             // request a
	evTimeout           // request a (per-attempt deadline expiry)
	evRetry             // request a (backed-off re-issue due)
)

type event struct {
	kind int8
	a, b int32
	// c carries an evCompletion's service sequence: cancelService bumps
	// the slot's sequence, stranding any completion event issued for
	// the abandoned service — the heap needs no deletions.
	c int32
}

// hedgeVoid marks a request whose hedge race lost its meaning — a
// scale-down migrated the primary copy onto the hedge node, so a
// completion there proves nothing about hedging.
const hedgeVoid = -2

// hedgeCross marks a request whose hedge copy lives in another routing
// domain (sharded runs only): the copy is a mirror entry in the target
// domain's request table, linked through crossDom/crossRef.
const hedgeCross = -3

// request is one in-flight request. A request id is recycled through a
// free list once every reference to it (queue slots, serving servers,
// the pending hedge timer) has been released.
//
// The cross-domain fields are used only by sharded runs and stay zero
// in the serial loop. When a hedge copy is placed in another domain,
// both entries of the pair defer their completion record (deferRec) to
// the coordinator's boundary reconciliation — only there are both
// domains' completions visible, so only there can the race be decided
// without double-counting. Each entry of a pair holds one extra
// reference on behalf of the link, released at reconciliation, so
// neither id can be recycled while its partner might still name it.
type request struct {
	arrival   float64
	node      int32 // primary node
	hedgeNode int32 // node the hedge copy went to; -1 none, hedgeVoid disabled
	refs      int8
	attempts  int8 // retries already issued (resilience)
	done      bool
	deferRec  bool  // record at boundary reconciliation, not at completion
	mirror    bool  // this entry is the hedge-copy side of a cross pair
	copyGone  bool  // this copy was discarded (failed scale-down migration)
	crossDom  int32 // partner entry's domain
	crossRef  int32 // partner entry's request id in that domain
}

// crossEvent is one completion of a cross-domain request pair, queued
// for the coordinator's boundary reconciliation. dom/id name the ORIGIN
// (primary) entry of the pair regardless of which copy completed, so
// the two domains' events for one request collide on the same key.
type crossEvent struct {
	dom     int32
	id      int32
	t       float64 // completion (or expiry) time
	node    int32   // node that completed this copy
	mirror  bool    // the completing copy was the mirror (hedge) side
	timeout bool    // deadline expiry, not a completion (origin side only)
}

// desNode is one node's simulation state.
type desNode struct {
	id   int
	spec *platform.Spec
	wl   *workload.Model
	cfg  platform.Config

	// The server pool uses a fixed-slot layout: every node always
	// allocates spec.Big.Cores + spec.Small.Cores slots — big slots
	// first ([0, bigSlots)), small after — and the current
	// configuration enables a prefix of each kind. Reconfiguring (the
	// learning loop) flips enabled flags and rates; a disabled slot
	// finishes its in-flight service at the already-drawn completion
	// time and then stops pulling work, so no heap event is ever
	// invalidated and fixed-configuration runs are bit-identical to the
	// pre-slot layout.
	servers    []queueing.Server
	dists      []stats.LogNormal
	enabled    []bool
	bigSlots   int
	idle       []bool
	serving    []int32
	svcSeq     []int32   // per-slot service sequence; bumped by cancelService
	busy       []float64 // busy seconds attributed to this interval
	busyUntil  []float64 // absolute end time of each server's current service
	busyCount  int
	queue      queueing.Ring[int32]
	capacity   float64 // total enabled service rate under the current config
	nominalCap float64 // capacity of the construction-time config (routing weight)
	maxQueue   int

	pol policy.Policy // per-node operating-point policy; nil unless Options.Learn

	// Resilience state (nil / zero unless Options.Resilience enables
	// the feature). hedgeLeft is the node's remaining hedge-copy budget
	// for the current interval, reset in the serial section.
	breaker   *resilience.Breaker
	bucket    *resilience.TokenBucket
	hedgeLeft int

	warmLeft int

	// Fault state (Options.Faults; all zero without it). A down node is
	// crashed or revoked: it serves nothing, routes nothing, and its
	// telemetry reports a dead sample. A draining node is a spot node
	// inside its revocation notice window: it finishes in-flight work
	// but accepts nothing new. slow > 0 stretches every service time by
	// 1/slow — the injected degradation the predictive detector hunts.
	down     bool
	draining bool
	slow     float64

	// Per-interval accumulators.
	arrived   int
	completed int
	sojourns  []float64

	meter       platform.EnergyMeter
	lastEnergyJ float64
	trace       *telemetry.Trace
	state       cluster.NodeState

	bigUtils   []float64
	smallUtils []float64
}

// latRecorder is the end-to-end latency record. Storing every sojourn
// of a memcached-scale day would need gigabytes, so the sample is a
// deterministic systematic one: every stride-th winning completion is
// kept, and when the buffer reaches latSampleCap it is decimated in
// place and the stride doubled. Below the cap (every Web-Search-scale
// run) the record is exact. The count and mean are always exact.
type latRecorder struct {
	sample []float64
	stride int64
	seen   int64
	sum    float64
}

// loop is one routing domain's event loop: the request table, event
// heap, RNG streams, arrival process and per-interval counters for a
// contiguous slice of the roster. The serial Fleet embeds a single
// loop spanning the whole roster (lo = 0, rosterActive = active); a
// sharded run builds one loop per domain and steps them in parallel,
// exchanging cross-domain effects only at interval boundaries. All
// methods on loop touch only the loop's own state, which is exactly
// what makes the parallel step deterministic.
type loop struct {
	id int // domain id; 0 for the serial fleet
	lo int // global id of this loop's first node

	nodes        []*desNode
	active       int // active nodes in this loop (a prefix of nodes)
	rosterActive int // fleet-wide active count (== active when serial)

	// Mitigation, resolved.
	hedging   bool
	stealing  bool
	minDepth  int
	hedgeWait float64 // current hedge delay; +Inf until first estimate

	// deferCross lets a hedge with no in-domain target park the
	// re-issue for the coordinator instead of giving up; false in the
	// serial loop and in single-domain sharded runs, where "no target
	// in this domain" already means "no target anywhere".
	deferCross bool

	// resil is the fleet's resolved resilience policy; nil when the
	// layer is off, in which case none of the new event kinds exist.
	resil *resilience.Options

	warmFactor float64

	// Fault-layer state, updated only in the coordinator's serial
	// section (all zero / nil without Options.Faults or the Predictive
	// mitigation). partCut != 0 splits the roster into sides [0, cut)
	// and [cut, n) that exchange no steals, hedges or migrations.
	// servingN counts active-prefix nodes that are neither down nor
	// draining. suspect is the fleet-shared predictive flag vector
	// (indexed by global node id, read-only mid-interval), and
	// suspectWait the shortened hedge delay for requests routed to a
	// flagged node. lost counts requests destroyed on this loop's
	// crashed nodes, cumulative over the run like dropped.
	partCut     int
	servingN    int
	suspect     []bool
	suspectWait float64
	lost        int

	arrRNG   *rand.Rand
	routeRNG *rand.Rand
	svcRNG   *rand.Rand
	retryRNG *rand.Rand // backoff jitter; its own stream so retries do not shift the others

	events queueing.TimeHeap[event]
	reqs   []request
	free   []int32

	lambda      float64
	nextArrival float64
	tickEnd     float64 // end of the current interval
	shares      []float64
	shareSum    float64

	// Per-interval scratch. dropped and timedOut are cumulative over
	// the run; the rest reset at every boundary.
	intervalSojourns []float64
	hedges           int
	hedgeWins        int
	steals           int
	primaries        int
	dropped          int
	timedOut         int
	retries          int
	timeouts         int
	rateLimited      int
	hedgeCancels     int

	lat latRecorder

	// Boundary outboxes (sharded runs only): hedge re-issues with no
	// in-domain target, and completions of cross-domain pairs awaiting
	// reconciliation.
	deferredHedges []int32
	crossDone      []crossEvent
}

// node maps a global node id to this loop's slice (a domain owns the
// contiguous id range starting at lo; the serial loop has lo == 0).
func (l *loop) node(id int32) *desNode { return l.nodes[int(id)-l.lo] }

// Fleet is the cluster-scale discrete-event simulator. It is not safe
// for concurrent use.
type Fleet struct {
	// loop is the serial event loop spanning the whole roster. A
	// sharded run (Options.Domains > 1) leaves it idle — sh owns
	// per-domain loops instead — but keeps nodes/active current so the
	// accessors stay truthful either way.
	loop

	opts     Options
	splitter cluster.Splitter
	workers  int
	dt       float64
	fleetCap float64
	clock    *sim.Clock

	hedgeQ float64

	sortScratch []float64

	states  []cluster.NodeState
	samples []telemetry.Sample
	fleet   *telemetry.FleetTrace
	merger  telemetry.Merger

	ctl       *autoscale.Controller
	roster    []autoscale.NodeInfo
	warmupIvs int

	// breakerOpens counts the interval's breaker open transitions;
	// rollResilience writes it, the boundary harvest resets it.
	breakerOpens int

	// Learning-loop state (Options.Learn).
	learning   bool
	fed        *cluster.Federation
	isActiveFn func(int) bool
	svScratch  []queueing.Server
	// Per-boundary learn telemetry, attached to the interval's fleet
	// sample after the merge.
	learnPhase     int
	learnRewardSum float64
	learnRewardN   int

	// Fault-injection state (Options.Faults). The schedule is drawn
	// once per run from its own Seed sub-stream; faultIdx walks it as
	// boundaries pass. healPending forces a federation sync round at
	// the boundary a partition heals, so nodes that missed rounds flush
	// their accumulated deltas. prevLost tracks the run's loss total at
	// the previous boundary for per-interval telemetry deltas.
	faultOpts   *faults.Options
	faultEvs    faults.Schedule
	faultIdx    int
	faultsDrawn bool
	healPending bool
	prevLost    int

	// Predictive-mitigation state (the Predictive mitigation): per-node
	// EWMA of the drain estimate, and the resolved detector parameters.
	predictive                      bool
	predAlpha, predThresh, predFrac float64
	predEwma                        []float64

	sh *sharded // non-nil when Options.Domains > 1

	stats  Stats
	failed error
}

// New validates options and builds the fleet simulator.
func New(opts Options) (*Fleet, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("clusterdes: no nodes")
	}
	if opts.Pattern == nil {
		return nil, errors.New("clusterdes: nil load pattern")
	}
	if opts.Workers < 0 {
		return nil, errors.New("clusterdes: negative worker count")
	}
	if opts.MaxQueue < 0 {
		return nil, errors.New("clusterdes: negative queue bound")
	}
	if opts.Domains < 0 {
		return nil, errors.New("clusterdes: negative domain count")
	}
	if opts.Domains > len(opts.Nodes) {
		return nil, fmt.Errorf("clusterdes: %d domains exceed the %d-node roster", opts.Domains, len(opts.Nodes))
	}
	f := &Fleet{
		loop: loop{
			hedgeWait:   math.Inf(1),
			suspectWait: math.Inf(1),
			lat:         latRecorder{stride: 1},
		},
		opts:     opts,
		splitter: opts.Splitter,
		workers:  opts.Workers,
		fleet:    &telemetry.FleetTrace{},
	}
	if f.splitter == nil {
		f.splitter = cluster.WeightedByCapacity{}
	}
	if f.workers == 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	f.dt = opts.IntervalSecs
	if f.dt == 0 {
		f.dt = 1
	}
	if f.dt < 0 {
		return nil, errors.New("clusterdes: negative interval")
	}
	f.clock = sim.NewClock(f.dt)

	switch m := opts.Mitigation.(type) {
	case nil, None:
	case Hedged:
		q := m.Quantile
		if q == 0 {
			q = 0.95
		}
		if q <= 0 || q >= 1 {
			return nil, fmt.Errorf("clusterdes: hedge quantile %v out of (0, 1)", m.Quantile)
		}
		f.hedging = true
		f.hedgeQ = q
	case WorkStealing:
		if m.MinDepth < 0 {
			return nil, fmt.Errorf("clusterdes: negative work-stealing min depth %d", m.MinDepth)
		}
		f.stealing = true
		f.minDepth = m.MinDepth
		if f.minDepth == 0 {
			f.minDepth = 2
		}
	case Predictive:
		q := m.Quantile
		if q == 0 {
			q = 0.95
		}
		if q <= 0 || q >= 1 {
			return nil, fmt.Errorf("clusterdes: hedge quantile %v out of (0, 1)", m.Quantile)
		}
		a := m.Alpha
		if a == 0 {
			a = 0.4
		}
		if a <= 0 || a > 1 {
			return nil, fmt.Errorf("clusterdes: predictive EWMA alpha %v out of (0, 1]", m.Alpha)
		}
		th := m.Threshold
		if th == 0 {
			th = 3
		}
		if th <= 1 {
			return nil, fmt.Errorf("clusterdes: predictive threshold %v must exceed 1", m.Threshold)
		}
		hf := m.HedgeFraction
		if hf == 0 {
			hf = 0.25
		}
		if hf <= 0 || hf > 1 {
			return nil, fmt.Errorf("clusterdes: predictive hedge fraction %v out of (0, 1]", m.HedgeFraction)
		}
		f.hedging = true
		f.hedgeQ = q
		f.predictive = true
		f.predAlpha, f.predThresh, f.predFrac = a, th, hf
	default:
		return nil, fmt.Errorf("clusterdes: unsupported mitigation %q", opts.Mitigation.Name())
	}

	if opts.Resilience.Enabled() {
		r, err := resilience.Resolve(*opts.Resilience)
		if err != nil {
			return nil, fmt.Errorf("clusterdes: %w", err)
		}
		f.resil = &r
	}

	if opts.Faults.Enabled() {
		fo, err := faults.Resolve(*opts.Faults)
		if err != nil {
			return nil, fmt.Errorf("clusterdes: %w", err)
		}
		f.faultOpts = &fo
	}
	if f.predictive {
		f.suspect = make([]bool, len(opts.Nodes))
		f.predEwma = make([]float64, len(opts.Nodes))
	}

	f.arrRNG = sim.SubRNG(opts.Seed, "des-arrival")
	f.routeRNG = sim.SubRNG(opts.Seed, "des-route")
	f.svcRNG = sim.SubRNG(opts.Seed, "des-service")
	f.retryRNG = sim.SubRNG(opts.Seed, "des-retry")

	for i, nc := range opts.Nodes {
		n, err := newNode(i, nc, opts.MaxQueue, f)
		if err != nil {
			return nil, err
		}
		f.nodes = append(f.nodes, n)
		f.fleetCap += n.capacity
	}

	f.active = len(f.nodes)
	if opts.Autoscale != nil {
		if err := f.initAutoscale(*opts.Autoscale); err != nil {
			return nil, err
		}
	}
	f.rosterActive = f.active
	for i, n := range f.nodes {
		n.state.Active = i < f.active
	}
	if opts.Learn != nil {
		if err := f.initLearn(*opts.Learn); err != nil {
			return nil, err
		}
	}
	f.stats.FirstScaleUpInterval = -1
	f.stats.FirstPredictInterval = -1
	f.stats.PeakActive, f.stats.MinActive = f.active, f.active
	f.states = make([]cluster.NodeState, len(f.nodes))
	f.samples = make([]telemetry.Sample, len(f.nodes))
	f.shares = make([]float64, len(f.nodes))
	if opts.Domains >= 1 {
		f.sh = newSharded(f, opts.Domains)
	}
	return f, nil
}

func newNode(id int, nc NodeConfig, maxQueue int, f *Fleet) (*desNode, error) {
	if nc.Spec == nil {
		return nil, fmt.Errorf("clusterdes: node %d: nil platform spec", id)
	}
	if nc.Workload == nil {
		return nil, fmt.Errorf("clusterdes: node %d: nil workload", id)
	}
	if err := nc.Workload.Validate(); err != nil {
		return nil, fmt.Errorf("clusterdes: node %d: %w", id, err)
	}
	cfg := platform.Config{NBig: nc.Spec.Big.Cores, BigFreq: nc.Spec.Big.MaxFreq()}
	if nc.Config != nil {
		cfg = nc.Config.Normalize(nc.Spec)
	}
	if err := cfg.Validate(nc.Spec); err != nil {
		return nil, fmt.Errorf("clusterdes: node %d: %w", id, err)
	}
	n := &desNode{
		id:    id,
		spec:  nc.Spec,
		wl:    nc.Workload,
		cfg:   cfg,
		trace: &telemetry.Trace{},
	}
	n.bigSlots = nc.Spec.Big.Cores
	slots := nc.Spec.Big.Cores + nc.Spec.Small.Cores
	n.servers = make([]queueing.Server, slots)
	n.dists = make([]stats.LogNormal, slots)
	// enabled and idle share one allocation; the fleet's AppendServers
	// scratch is threaded through so per-node construction costs no
	// extra allocations over the pre-reconfigurable layout.
	bools := make([]bool, 2*slots)
	n.enabled, n.idle = bools[:slots:slots], bools[slots:]
	f.svScratch = n.applyConfig(cfg, f.svScratch)
	n.nominalCap = n.capacity
	for i := range n.idle {
		n.idle[i] = true
	}
	n.serving = make([]int32, len(n.servers))
	for i := range n.serving {
		n.serving[i] = -1
	}
	n.svcSeq = make([]int32, len(n.servers))
	if r := f.resil; r != nil {
		if r.Breaker != nil {
			n.breaker = resilience.NewBreaker(*r.Breaker)
		}
		if r.RateLimit != nil {
			n.bucket = resilience.NewTokenBucket(*r.RateLimit)
		}
		n.hedgeLeft = r.HedgeBudget
	}
	n.busy = make([]float64, len(n.servers))
	n.busyUntil = make([]float64, len(n.servers))
	n.maxQueue = maxQueue
	if n.maxQueue == 0 {
		n.maxQueue = int(math.Max(64, nc.Workload.BacklogCapSecs*n.capacity*4))
	}
	n.bigUtils = make([]float64, nc.Spec.Big.Cores)
	n.smallUtils = make([]float64, nc.Spec.Small.Cores)
	n.state = cluster.NodeState{ID: id, CapacityRPS: n.capacity}
	return n, nil
}

func (f *Fleet) initAutoscale(opts AutoscaleOptions) error {
	pol := opts.Policy
	if pol == nil {
		pol = autoscale.TargetUtilization{}
	}
	lo := opts.MinNodes
	if lo == 0 {
		lo = 1
	}
	hi := opts.MaxNodes
	if hi == 0 {
		hi = len(f.nodes)
	}
	if hi > len(f.nodes) {
		return fmt.Errorf("clusterdes: autoscale max nodes %d exceeds the %d-node roster", hi, len(f.nodes))
	}
	initial := opts.InitialNodes
	if initial == 0 {
		initial = lo
	}
	ctl, err := autoscale.NewController(autoscale.Config{
		Policy:             pol,
		Min:                lo,
		Max:                hi,
		CooldownIntervals:  opts.CooldownIntervals,
		DownAfterIntervals: opts.DownAfterIntervals,
	})
	if err != nil {
		return err
	}
	if initial < lo || initial > hi {
		return fmt.Errorf("clusterdes: autoscale initial nodes %d outside [%d, %d]", initial, lo, hi)
	}
	if opts.WarmupIntervals < 0 {
		return fmt.Errorf("clusterdes: negative warm-up %d", opts.WarmupIntervals)
	}
	if opts.WarmupFactor < 0 || opts.WarmupFactor >= 1 {
		return fmt.Errorf("clusterdes: warm-up factor %v out of [0, 1)", opts.WarmupFactor)
	}
	f.ctl = ctl
	f.roster = make([]autoscale.NodeInfo, len(f.nodes))
	f.warmupIvs = opts.WarmupIntervals
	f.warmFactor = opts.WarmupFactor
	f.active = initial
	return nil
}

// NumNodes returns the roster size.
func (f *Fleet) NumNodes() int { return len(f.nodes) }

// ActiveNodes returns the current active-node count.
func (f *Fleet) ActiveNodes() int { return f.active }

// Workers returns the resolved summary-worker count (never zero).
func (f *Fleet) Workers() int { return f.workers }

// CapacityRPS returns the total roster capacity at the configured
// per-node configurations.
func (f *Fleet) CapacityRPS() float64 { return f.fleetCap }

// alloc takes a request id from the free list or grows the table.
func (l *loop) alloc(t float64, node int32) int32 {
	if n := len(l.free); n > 0 {
		id := l.free[n-1]
		l.free = l.free[:n-1]
		l.reqs[id] = request{arrival: t, node: node, hedgeNode: -1}
		return id
	}
	l.reqs = append(l.reqs, request{arrival: t, node: node, hedgeNode: -1})
	return int32(len(l.reqs) - 1)
}

// release drops one reference; a finished request with no references
// left returns to the free list.
func (l *loop) release(id int32) {
	r := &l.reqs[id]
	r.refs--
	if r.refs == 0 && r.done {
		l.free = append(l.free, id)
	}
}

// svcSample draws a service duration for server s of node n.
func (l *loop) svcSample(n *desNode, s int) float64 {
	d := n.dists[s]
	if d.Sigma == 0 {
		return 1 / n.servers[s].Rate
	}
	return math.Exp(d.Mu + d.Sigma*l.svcRNG.NormFloat64())
}

// startService puts request id on server s of node n. A warming node's
// service is stretched by 1/WarmupFactor; callers never start service
// on a warming node when the factor is 0. Busy time is charged to the
// current interval only up to its boundary; finishInterval carries the
// remainder of a spanning service into the following intervals, so
// utilisation and power land in the interval the server was actually
// busy.
func (l *loop) startService(n *desNode, s int, id int32, t float64) {
	n.idle[s] = false
	n.busyCount++
	n.serving[s] = id
	l.reqs[id].refs++
	d := l.svcSample(n, s)
	if n.warmLeft > 0 {
		d /= l.warmFactor
	}
	if n.slow > 0 {
		d /= n.slow
	}
	end := t + d
	n.busyUntil[s] = end
	n.busy[s] += math.Min(end, l.tickEnd) - t
	l.events.Push(end, event{kind: evCompletion, a: int32(n.id), b: int32(s), c: n.svcSeq[s]})
}

// cancelService abandons the service in flight on server s of node n at
// time t: the already-scheduled completion event is stranded by bumping
// the slot's service sequence, the interval's busy charge is trimmed
// back to the time actually served, and the freed server immediately
// pulls its next request.
func (l *loop) cancelService(n *desNode, s int, t float64) {
	id := n.serving[s]
	n.serving[s] = -1
	n.svcSeq[s]++
	n.busyCount--
	if over := math.Min(n.busyUntil[s], l.tickEnd) - t; over > 0 {
		n.busy[s] -= over
	}
	n.busyUntil[s] = t
	l.release(id)
	l.pullWork(n, s, t)
}

// cancelCopy cancels request id's in-service copy on node n, if one
// exists; a queued copy needs no action — the entry's done flag voids
// it lazily at popLocal. Reports whether a service was cancelled.
func (l *loop) cancelCopy(n *desNode, id int32, t float64) bool {
	for s, sid := range n.serving {
		if sid == id {
			l.cancelService(n, s, t)
			return true
		}
	}
	return false
}

// fastestIdle returns the idle enabled server with the highest rate,
// -1 if all are busy (pools are tiny: at most 6 slots on Juno).
func (n *desNode) fastestIdle() int {
	best := -1
	for i, ok := range n.idle {
		if !ok || !n.enabled[i] {
			continue
		}
		if best == -1 || n.servers[i].Rate > n.servers[best].Rate {
			best = i
		}
	}
	return best
}

// dispatch routes one copy of request id to node n: straight to the
// fastest idle server when one exists (and the node is serving), else
// onto the queue. It reports false when the queue bound drops the copy.
func (l *loop) dispatch(n *desNode, id int32, t float64) bool {
	if n.down || n.draining {
		return false
	}
	if n.warmLeft == 0 || l.warmFactor > 0 {
		if s := n.fastestIdle(); s >= 0 {
			l.startService(n, s, id, t)
			return true
		}
	}
	if n.queue.Len() >= n.maxQueue {
		return false
	}
	n.queue.Push(id)
	l.reqs[id].refs++
	return true
}

// popLocal pops the oldest live request off n's queue, lazily
// discarding entries whose request already completed elsewhere (a won
// hedge race or a steal). Returns -1 on an empty queue.
func (l *loop) popLocal(n *desNode) int32 {
	for n.queue.Len() > 0 {
		id := n.queue.Pop()
		l.release(id)
		if !l.reqs[id].done {
			return id
		}
	}
	return -1
}

// steal pulls the oldest request from the deepest queue in the loop's
// active set (at least minDepth deep), -1 when nothing is worth
// stealing. Warming victims are fair game — their queue is exactly the
// transient stealing exists to drain. Mid-interval steals stay inside
// the loop's own domain; cross-domain steals happen only at interval
// boundaries, through the coordinator.
func (l *loop) steal(thief *desNode) int32 {
	best := -1
	depth := l.minDepth - 1
	for _, v := range l.nodes[:l.active] {
		if v == thief || v.down || v.draining || !l.sameSide(v.id, thief.id) {
			continue
		}
		if v.queue.Len() > depth {
			depth = v.queue.Len()
			best = v.id
		}
	}
	if best < 0 {
		return -1
	}
	return l.popLocal(l.node(int32(best)))
}

// pullWork hands server s of node n its next request after a
// completion: local queue first, then a cross-node steal when the
// mitigation allows. Warming and deactivated nodes do not pull, and
// neither does a slot the current configuration disabled — that is how
// a reconfigured-away core drains. (The active check is against the
// fleet-wide roster — node ids are global and the active set is a
// roster prefix.)
func (l *loop) pullWork(n *desNode, s int, t float64) {
	// A draining (spot-notice) node still serves its own residual queue
	// — the notice window exists to finish work — but never steals.
	serving := n.enabled[s] && n.id < l.rosterActive && !n.down &&
		(n.warmLeft == 0 || l.warmFactor > 0)
	if serving {
		if id := l.popLocal(n); id >= 0 {
			l.startService(n, s, id, t)
			return
		}
		if l.stealing && n.warmLeft == 0 && !n.draining {
			if id := l.steal(n); id >= 0 {
				l.steals++
				// The thief owns the copy now; a later deadline expiry
				// must cancel the service where it actually runs.
				l.reqs[id].node = int32(n.id)
				l.startService(n, s, id, t)
				return
			}
		}
	}
	n.idle[s] = true
}

// kickIdle lets node n's idle servers pick up work outside the
// completion path: after a warm-up expires (the queue built while every
// server sat idle) and, with stealing on, at interval boundaries so a
// fully idle node — which sees no completion events — still rescues a
// drowning peer.
func (l *loop) kickIdle(n *desNode, t float64) {
	for s := range n.idle {
		if !n.idle[s] || !n.enabled[s] {
			continue
		}
		l.pullWork(n, s, t)
		if n.idle[s] {
			break // nothing left to pull; further servers won't find work either
		}
	}
}

// routeDraw picks a node by one draw over the interval's routing
// weights (zero-share nodes — including down and draining ones, whose
// shares the refresh zeroes — are never selected). The all-zero-weight
// fallback draws from the retry stream — only re-issued attempts reach
// it; primary arrivals use their own round-robin fallback so existing
// runs are untouched. Returns nil only when no active node can take
// new work; callers with servingN > 0 always get a node.
func (l *loop) routeDraw() *desNode {
	if l.shareSum > 0 {
		u := l.routeRNG.Float64() * l.shareSum
		acc := 0.0
		last := -1
		for i := 0; i < l.active; i++ {
			if l.shares[i] <= 0 {
				continue
			}
			last = i
			acc += l.shares[i]
			if u < acc {
				return l.nodes[i]
			}
		}
		if last >= 0 {
			return l.nodes[last]
		}
	}
	return l.fallbackNode(int(l.retryRNG.Int63n(int64(l.active))))
}

// fallbackNode walks the active prefix round-robin from slot k to the
// first node that can take new work, nil when every active node is
// down or draining. Without faults it returns nodes[k%active] — the
// pre-fault fallback — unchanged.
func (l *loop) fallbackNode(k int) *desNode {
	for i := 0; i < l.active; i++ {
		n := l.nodes[(k+i)%l.active]
		if !n.down && !n.draining {
			return n
		}
	}
	return nil
}

// sameSide reports whether nodes a and b can exchange work under the
// current partition (always true without one).
func (l *loop) sameSide(a, b int) bool {
	return l.partCut == 0 || (a < l.partCut) == (b < l.partCut)
}

// admit runs node n's admission policies for one attempt of request id
// at time t; a refused attempt goes down the retry-or-drop path.
func (l *loop) admit(n *desNode, id int32, t float64) bool {
	if n.breaker != nil && !n.breaker.Allow() {
		l.failAttempt(id, t)
		return false
	}
	if n.bucket != nil && !n.bucket.Allow(t) {
		l.rateLimited++
		l.failAttempt(id, t)
		return false
	}
	return true
}

// armDeadline schedules request id's per-attempt deadline.
func (l *loop) armDeadline(id int32, t float64) {
	if l.resil == nil || l.resil.Timeout <= 0 {
		return
	}
	l.reqs[id].refs++
	l.events.Push(t+l.resil.Timeout, event{kind: evTimeout, a: id})
}

// failAttempt resolves a failed delivery attempt (admission refusal or
// queue-cap rejection) of request id at time t: schedule a backed-off
// retry while the budget lasts, else the request is finally dropped.
// The failed attempt must hold no references when called.
func (l *loop) failAttempt(id int32, t float64) {
	r := &l.reqs[id]
	if l.resil != nil && int(r.attempts) < l.resil.MaxRetries {
		d := l.resil.Backoff.Delay(int(r.attempts), l.retryRNG.Float64())
		r.attempts++
		r.refs++
		l.retries++
		l.events.Push(t+d, event{kind: evRetry, a: id})
		return
	}
	r.done = true
	l.dropped++
	if r.refs == 0 {
		l.free = append(l.free, id)
	}
}

// handleArrival processes one domain-level arrival at the pending
// arrival time and draws the next one.
func (l *loop) handleArrival() {
	t := l.nextArrival
	l.nextArrival = t + l.arrRNG.ExpFloat64()/l.lambda
	// Route by one draw over the interval's splitter weights.
	var n *desNode
	if l.shareSum > 0 {
		n = l.routeDraw()
	} else {
		n = l.fallbackNode(l.primaries)
	}
	l.primaries++
	if n == nil {
		// Every active node is down or draining: the arrival has nowhere
		// to land and is dropped at the fleet's front door.
		l.dropped++
		return
	}
	id := l.alloc(t, int32(n.id))
	if l.resil != nil && !l.admit(n, id, t) {
		return
	}
	n.arrived++
	if !l.dispatch(n, id, t) {
		if l.resil != nil {
			if n.breaker != nil {
				n.breaker.Record(false)
			}
			l.failAttempt(id, t)
			return
		}
		l.reqs[id].done = true
		l.free = append(l.free, id)
		l.dropped++
		return
	}
	l.armDeadline(id, t)
	// The hedge gate is fleet-wide: with one active node in this domain
	// but more elsewhere, the timer still arms — the coordinator can
	// place the copy across the boundary.
	if l.hedging && !math.IsInf(l.hedgeWait, 1) && l.rosterActive > 1 {
		wait := l.hedgeWait
		// Predictive mitigation: a request routed to a flagged node gets
		// its hedge armed at a fraction of the reactive delay — the copy
		// races before the slow node's tail ever shows in telemetry.
		if l.suspect != nil && l.suspect[n.id] && !math.IsInf(l.suspectWait, 1) {
			wait = l.suspectWait
		}
		l.reqs[id].refs++
		l.events.Push(t+wait, event{kind: evHedge, a: id})
	}
}

// handleCompletion finishes the request on server b of node a. Only the
// first copy to finish records the sojourn; late copies just free their
// server. A copy of a cross-domain pair records nothing here — the
// partner copy may have finished earlier in its own domain, so the race
// is decided at the coordinator's boundary reconciliation, where both
// domains' completions are visible.
func (l *loop) handleCompletion(t float64, ev event) {
	n := l.node(ev.a)
	s := int(ev.b)
	if ev.c != n.svcSeq[s] {
		return // the service was cancelled; this completion is stranded
	}
	id := n.serving[s]
	n.serving[s] = -1
	n.busyCount--
	r := &l.reqs[id]
	switch {
	case r.done:
	case r.deferRec:
		ce := crossEvent{dom: int32(l.id), id: id, t: t, node: int32(n.id), mirror: r.mirror}
		if r.mirror {
			ce.dom, ce.id = r.crossDom, r.crossRef
		}
		l.crossDone = append(l.crossDone, ce)
	default:
		r.done = true
		soj := t - r.arrival
		n.completed++
		n.sojourns = append(n.sojourns, soj)
		l.intervalSojourns = append(l.intervalSojourns, soj)
		l.lat.record(soj)
		if r.hedgeNode == int32(n.id) {
			l.hedgeWins++
		}
		if n.breaker != nil {
			n.breaker.Record(true)
		}
		// Hedge cancellation: the race is decided, so the losing copy's
		// server slot is reclaimed instead of running to completion.
		// Both copies of an in-domain pair live on this loop's nodes.
		if l.resil != nil && l.resil.CancelHedges && r.hedgeNode >= 0 {
			loser := r.hedgeNode
			if loser == int32(n.id) {
				loser = r.node
			}
			if l.cancelCopy(l.node(loser), id, t) {
				l.hedgeCancels++
			}
		}
	}
	l.release(id)
	l.pullWork(n, s, t)
}

// handleTimeout fires request id's per-attempt deadline. A cross-pair
// origin parks the expiry for the coordinator's reconciliation (the
// mirror domain may have completed it first); otherwise the attempt is
// abandoned here: in-service copies release their servers, queued
// copies void lazily, and the request respawns as a retry or counts
// timed out.
func (l *loop) handleTimeout(t float64, ev event) {
	id := ev.a
	r := &l.reqs[id]
	switch {
	case r.done:
	case r.deferRec:
		l.crossDone = append(l.crossDone, crossEvent{
			dom: int32(l.id), id: id, t: t, node: r.node, timeout: true,
		})
	default:
		l.expire(id, t)
	}
	l.release(id)
}

// expire abandons every copy of request id at time t and either
// respawns the request as a fresh entry carrying the original arrival
// time and attempt count (so end-to-end latency spans all attempts) or
// records it timed out. A fresh entry sidesteps any stale queued copy
// of the old id: the old entry is done, so its copies void lazily.
func (l *loop) expire(id int32, t float64) {
	r := &l.reqs[id]
	l.timeouts++
	pn := l.node(r.node)
	if pn.breaker != nil {
		pn.breaker.Record(false)
	}
	l.cancelCopy(pn, id, t)
	if hn := r.hedgeNode; hn >= 0 && hn != r.node {
		l.cancelCopy(l.node(hn), id, t)
	}
	arrival, attempts := r.arrival, r.attempts
	r.done = true
	if int(attempts) < l.resil.MaxRetries {
		// alloc may grow the table; r is dead past this point.
		nid := l.alloc(arrival, -1)
		l.reqs[nid].attempts = attempts
		l.failAttempt(nid, t) // attempts < budget: always schedules the retry
	} else {
		l.timedOut++
	}
}

// handleRetry re-issues a backed-off attempt of request id: a fresh
// routing draw over the current weights, then admission, dispatch and
// deadline exactly like a primary arrival (but never counted a primary,
// and never hedged — hedging speculates on healthy requests, not ones
// already failing). The retry timer is the entry's only reference while
// it waits.
func (l *loop) handleRetry(t float64, ev event) {
	id := ev.a
	r := &l.reqs[id]
	l.release(id) // the timer's reference; done is false, so the entry stays
	if l.active == 0 || l.servingN == 0 {
		// The domain lost every active node (to scale-down, crashes or
		// revocations) while the retry waited; look again once the
		// backoff cap has passed — the roster can regrow or recover.
		r.refs++
		l.events.Push(t+l.resil.Backoff.Cap, event{kind: evRetry, a: id})
		return
	}
	n := l.routeDraw()
	r.node = int32(n.id)
	if !l.admit(n, id, t) {
		return
	}
	n.arrived++
	if !l.dispatch(n, id, t) {
		if n.breaker != nil {
			n.breaker.Record(false)
		}
		l.failAttempt(id, t)
		return
	}
	l.armDeadline(id, t)
}

// handleHedge fires a request's hedge timer: if it is still in flight,
// issue one copy to the least-committed other active node of this
// domain. With deferCross set (multi-domain runs) and no in-domain
// candidate, the re-issue is parked in the boundary outbox instead —
// the coordinator can place the copy in another domain, paying at most
// one interval of extra delay for not sharing mid-interval state.
func (l *loop) handleHedge(t float64, ev event) {
	id := ev.a
	r := &l.reqs[id]
	if !r.done && r.hedgeNode == -1 {
		var target *desNode
		bestLoad := 0
		for _, v := range l.nodes[:l.active] {
			if !l.hedgeTargetOK(v, r) {
				continue
			}
			load := v.queue.Len() + v.busyCount
			if target == nil || load < bestLoad {
				target, bestLoad = v, load
			}
		}
		if target != nil {
			r.hedgeNode = int32(target.id)
			if l.dispatch(target, id, t) {
				target.arrived++
				l.hedges++
				l.spendHedgeBudget(target)
			}
		} else if l.deferCross {
			// The timer's reference rides along into the outbox.
			l.deferredHedges = append(l.deferredHedges, id)
			return
		}
	}
	l.release(id)
	// The timer can be a request's last reference: a scale-down
	// migration that failed re-dispatch leaves the request alive only
	// for this re-issue (see autoscaleStep). If the re-issue also
	// failed — no eligible second node, or its queue full — the request
	// is truly lost and must be counted and recycled, not leaked.
	if r.refs == 0 && !r.done {
		r.done = true
		l.dropped++
		l.free = append(l.free, id)
	}
}

// hedgeTargetOK reports whether node v may receive request r's hedge
// copy: not the primary's node, not warming, not down or draining, not
// a predictive suspect, on the primary's side of any partition, and
// eligible under the resilience policy. Without faults or the
// predictive detector this reduces to the pre-fault condition.
func (l *loop) hedgeTargetOK(v *desNode, r *request) bool {
	if int32(v.id) == r.node || v.warmLeft > 0 || v.down || v.draining {
		return false
	}
	if l.suspect != nil && l.suspect[v.id] {
		return false
	}
	if !l.sameSide(v.id, int(r.node)) {
		return false
	}
	return l.hedgeEligible(v)
}

// hedgeEligible reports whether node v may receive a hedge copy under
// the resilience policy: its per-interval hedge budget is not spent and
// its breaker is not open. (Hedge copies skip full admission — they are
// the mitigation's own traffic, rationed by the budget instead.)
func (l *loop) hedgeEligible(v *desNode) bool {
	if l.resil == nil {
		return true
	}
	if l.resil.HedgeBudget > 0 && v.hedgeLeft <= 0 {
		return false
	}
	return v.breaker == nil || v.breaker.State() != resilience.BreakerOpen
}

// spendHedgeBudget charges one issued hedge copy to node v's budget.
func (l *loop) spendHedgeBudget(v *desNode) {
	if l.resil != nil && l.resil.HedgeBudget > 0 {
		v.hedgeLeft--
	}
}

// latSampleCap bounds the end-to-end latency sample. 1<<22 float64s is
// 32 MB — far above any Web-Search-scale run (those stay exact), and a
// systematic every-k-th sample of the completion stream beyond it.
const latSampleCap = 1 << 22

// record folds one winning sojourn into the end-to-end record.
func (lr *latRecorder) record(soj float64) {
	lr.seen++
	lr.sum += soj
	if lr.seen%lr.stride == 0 {
		lr.sample = append(lr.sample, soj)
		if len(lr.sample) >= latSampleCap {
			// Decimate in place: keeping every 2nd kept element turns a
			// stride-k systematic sample into a stride-2k one.
			half := len(lr.sample) / 2
			for i := 0; i < half; i++ {
				lr.sample[i] = lr.sample[2*i+1]
			}
			lr.sample = lr.sample[:half]
			lr.stride *= 2
		}
	}
}

// runInterval drains the loop's event heap and arrival process up to
// the interval boundary tTick, in event-time order. This is the whole
// of a domain's work between two boundaries: it reads and writes only
// the loop's own state, which is what lets a sharded run step every
// domain in parallel.
func (l *loop) runInterval(tTick float64) {
	l.tickEnd = tTick
	for {
		tEv := math.Inf(1)
		if et, ok := l.events.PeekTime(); ok {
			tEv = et
		}
		if tEv <= l.nextArrival {
			if tEv >= tTick {
				return
			}
			t, ev := l.events.Pop()
			switch ev.kind {
			case evCompletion:
				l.handleCompletion(t, ev)
			case evHedge:
				l.handleHedge(t, ev)
			case evTimeout:
				l.handleTimeout(t, ev)
			default:
				l.handleRetry(t, ev)
			}
		} else {
			if l.nextArrival >= tTick {
				return
			}
			l.handleArrival()
		}
	}
}

// refreshInterval recomputes the fleet arrival rate and routing weights
// for the interval starting at t.
func (f *Fleet) refreshInterval(t float64) error {
	f.lambda = f.opts.Pattern.LoadAt(t) * f.fleetCap
	if f.lambda < 0 {
		return fmt.Errorf("clusterdes: pattern returned negative load at t=%v", t)
	}
	f.servingN = 0
	for _, n := range f.nodes[:f.active] {
		if !n.down && !n.draining {
			f.servingN++
		}
	}
	if f.servingN == 0 {
		// Blackout: every active node is down or draining. No arrivals are
		// admitted (clients see a dead cluster, not an infinite queue);
		// pending retries re-probe at the backoff cap until capacity
		// returns.
		f.lambda = 0
	}
	if f.lambda > 0 && math.IsInf(f.nextArrival, 1) {
		f.nextArrival = t + f.arrRNG.ExpFloat64()/f.lambda
	}
	for i, n := range f.nodes[:f.active] {
		f.states[i] = n.state
	}
	shares := f.splitter.Split(cluster.SplitContext{
		Interval: f.clock.Steps(),
		T:        t,
		TotalRPS: f.lambda,
		Nodes:    f.states[:f.active],
	})
	if len(shares) != f.active {
		return fmt.Errorf("clusterdes: splitter %q returned %d shares for %d active nodes",
			f.splitter.Name(), len(shares), f.active)
	}
	f.shareSum = 0
	for i, s := range shares {
		if s < 0 {
			return fmt.Errorf("clusterdes: splitter %q returned negative share %v for node %d",
				f.splitter.Name(), s, i)
		}
		// A down or draining node takes no new primaries regardless of
		// what the splitter assigned it; its share redistributes
		// implicitly through routeDraw's positive-share walk.
		if v := f.nodes[i]; v.down || v.draining {
			s = 0
		}
		f.shares[i] = s
		f.shareSum += s
	}
	return nil
}

// finishInterval produces node n's telemetry sample for the interval
// ending at t and resets its per-interval scratch. It touches only the
// node's own state plus pure model evaluations, so the coordinator runs
// it for all nodes in parallel.
func (n *desNode) finishInterval(t, dt float64) telemetry.Sample {
	if n.down {
		// Dead sample: a crashed or revoked node reports the tail cap —
		// the fleet observes it as a hard QoS failure (straggler signal,
		// autoscale pressure) rather than a vacuous pass — and draws no
		// power (its meter stops accumulating while it is off).
		s := telemetry.Sample{
			T:           t,
			TailLatency: n.wl.TailCapFactor * n.wl.TargetLatency,
			Target:      n.wl.TargetLatency,
			NBig:        n.cfg.NBig,
			NSmall:      n.cfg.NSmall,
			BigFreqMHz:  int(n.cfg.BigFreq),
			EnergyJ:     n.meter.TotalJ(),
		}
		n.trace.Add(s)
		n.state.Stepped = true
		n.state.LastOfferedRPS = 0
		n.state.LastAchievedRPS = 0
		n.state.LastBacklog = 0
		n.state.LastTailLatency = s.TailLatency
		n.state.LastTarget = s.Target
		n.arrived, n.completed = 0, 0
		n.sojourns = n.sojourns[:0]
		for i := range n.busy {
			n.busy[i] = 0
		}
		return s
	}
	tail := 0.0
	if len(n.sojourns) > 0 {
		stats.SortFloats(n.sojourns)
		tail, _ = stats.PercentileSorted(n.sojourns, n.wl.QoSPercentile)
	} else if n.queue.Len() > 0 || n.busyCount > 0 {
		// Work in flight but nothing completed: the load generator
		// observes timeouts, not silence — report the tail cap so a
		// warming node drowning under its queue reads as the straggler
		// it is instead of a vacuous QoS pass.
		tail = n.wl.TailCapFactor * n.wl.TargetLatency
	}
	if cap := n.wl.TailCapFactor * n.wl.TargetLatency; tail > cap {
		tail = cap
	}

	for i := range n.bigUtils {
		n.bigUtils[i] = 0
	}
	for i := range n.smallUtils {
		n.smallUtils[i] = 0
	}
	// Slot layout is big cores first; a draining disabled slot still
	// charges its core's utilisation here, because the core really is
	// executing until the in-flight service completes.
	for s := range n.busy {
		u := n.busy[s] / dt
		if u > 1 {
			u = 1
		}
		if s < n.bigSlots {
			n.bigUtils[s] = u
		} else {
			n.smallUtils[s-n.bigSlots] = u
		}
	}
	bigF := n.cfg.BigFreq
	if n.cfg.NBig == 0 {
		bigF = n.spec.Big.MinFreq()
	}
	breakdown := platform.SystemPower(n.spec, platform.Load{
		BigFreq:      bigF,
		SmallFreq:    n.spec.Small.MaxFreq(),
		BigUtils:     n.bigUtils,
		SmallUtils:   n.smallUtils,
		DeliveredIPS: float64(n.completed) * n.wl.DemandInstr / dt,
	})
	n.meter.Add(breakdown, dt)
	n.lastEnergyJ = n.meter.TotalJ()

	s := telemetry.Sample{
		T:           t,
		LoadFrac:    float64(n.arrived) / dt / n.capacity,
		OfferedRPS:  float64(n.arrived) / dt,
		AchievedRPS: float64(n.completed) / dt,
		Backlog:     float64(n.queue.Len()),
		TailLatency: tail,
		Target:      n.wl.TargetLatency,
		NBig:        n.cfg.NBig,
		NSmall:      n.cfg.NSmall,
		BigFreqMHz:  int(n.cfg.BigFreq),
		BigW:        breakdown.BigW,
		SmallW:      breakdown.SmallW,
		RestW:       breakdown.RestW,
		EnergyJ:     n.meter.TotalJ(),
	}
	n.trace.Add(s)

	n.state.Stepped = true
	n.state.LastOfferedRPS = s.OfferedRPS
	n.state.LastAchievedRPS = s.AchievedRPS
	n.state.LastBacklog = s.Backlog
	n.state.LastTailLatency = s.TailLatency
	n.state.LastTarget = s.Target

	n.arrived, n.completed = 0, 0
	n.sojourns = n.sojourns[:0]
	// A service spanning the boundary charges the next interval the
	// part of its duration that falls there (possibly the whole dt:
	// warm-up-stretched services can span several intervals).
	for i := range n.busy {
		n.busy[i] = 0
		if n.busyUntil[i] > t {
			n.busy[i] = math.Min(n.busyUntil[i]-t, dt)
		}
	}
	return s
}

// summarize runs finishInterval for every active node, in parallel when
// workers allow. Each node writes only its own slot and its own state,
// so results are independent of the worker count. Goroutines are
// spawned per tick rather than held in a persistent pool (the cluster
// layer's design): a DES interval summary sorts a few thousand floats
// per node, a fraction of the serial event loop's cost, so pool
// lifecycle machinery would buy nothing measurable here.
func (f *Fleet) summarize(t float64) {
	act := f.nodes[:f.active]
	if f.workers <= 1 || len(act) <= 1 {
		for i, n := range act {
			f.samples[i] = n.finishInterval(t, f.dt)
		}
		return
	}
	w := f.workers
	if w > len(act) {
		w = len(act)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(act) {
					return
				}
				f.samples[i] = act[i].finishInterval(t, f.dt)
			}
		}()
	}
	wg.Wait()
}

// autoscaleStep runs one scaling decision on the previous interval's
// measurements and applies it. With federation enabled, activating
// nodes warm-start from the fleet table and departing nodes flush
// their delta — the same protocol the interval-mode cluster runs.
func (f *Fleet) autoscaleStep(t float64, measuredRPS float64) error {
	for i, n := range f.nodes {
		f.roster[i] = autoscale.NodeInfo{
			ID:              i,
			CapacityRPS:     n.nominalCap,
			Active:          n.state.Active && !n.down,
			Stepped:         n.state.Stepped,
			LastOfferedRPS:  n.state.LastOfferedRPS,
			LastTailLatency: n.state.LastTailLatency,
			LastTarget:      n.state.LastTarget,
			LastQueueDepth:  float64(n.queue.Len()),
		}
	}
	d := f.ctl.Decide(autoscale.Context{
		Interval:   f.clock.Steps(),
		T:          t,
		OfferedRPS: measuredRPS,
		Nodes:      f.roster,
		Active:     f.active,
	})
	if !d.Scaled {
		return nil
	}
	if d.Target > f.active {
		// One fleet-table copy serves every activation of this event.
		var bc federation.Broadcast
		for id := f.active; id < d.Target; id++ {
			n := f.nodes[id]
			if f.fed != nil {
				warmed, err := f.fed.WarmStart(id, f.clock.Steps(), &bc)
				if err != nil {
					return fmt.Errorf("clusterdes: autoscale warm-start of node %d: %w", id, err)
				}
				if warmed {
					f.stats.WarmStarts++
				}
			}
			n.state.Active = true
			n.warmLeft = f.warmupIvs
			// Discard interval residue from the node's deactivation era:
			// requests that were in service when it powered down
			// completed into these accumulators with nobody to report
			// them, and must not pollute the first interval back.
			n.arrived, n.completed = 0, 0
			n.sojourns = n.sojourns[:0]
			for i := range n.busy {
				n.busy[i] = 0
			}
		}
		if f.stats.FirstScaleUpInterval < 0 {
			f.stats.FirstScaleUpInterval = f.clock.Steps()
		}
		f.stats.Ups++
		f.stats.NodesAdded += d.Target - f.active
	} else {
		oldActive := f.active
		f.active = d.Target // shrink first so migrations only target survivors
		f.rosterActive = d.Target
		for id := d.Target; id < oldActive; id++ {
			n := f.nodes[id]
			if f.fed != nil {
				flushed, err := f.fed.Flush(id, f.clock.Steps())
				if err != nil {
					return fmt.Errorf("clusterdes: autoscale flush of node %d: %w", id, err)
				}
				if flushed {
					f.stats.Flushes++
				}
			}
			// A dormant node's TD chain is cut: its next decision after
			// reactivation must not bridge the gap with a reward computed
			// from its first interval back.
			if ep, ok := n.pol.(policy.Episodic); ok {
				ep.EndEpisode()
			}
			n.state.Active = false
			n.warmLeft = 0
			// A powered-off node does not keep a request queue alive:
			// its queued requests move to the least-committed surviving
			// nodes (in FIFO order) rather than vanishing or surfacing
			// as phantom latency when the node rejoins.
			for {
				id2 := f.popLocal(n)
				if id2 < 0 {
					break
				}
				f.migrateOne(n, id2, t, false)
			}
			n.state.Stepped = false
			n.state.LastOfferedRPS = 0
			n.state.LastAchievedRPS = 0
			n.state.LastBacklog = 0
			n.state.LastTailLatency = 0
			n.state.LastTarget = 0
		}
		f.stats.Downs++
		f.stats.NodesRemoved += oldActive - d.Target
	}
	f.active = d.Target
	f.rosterActive = d.Target
	if f.active > f.stats.PeakActive {
		f.stats.PeakActive = f.active
	}
	if f.active < f.stats.MinActive {
		f.stats.MinActive = f.active
	}
	return nil
}

// rollResilience is the resilience boundary step, identical in the
// serial and sharded coordinators: every node's circuit breaker rolls
// its outcome window (state transitions happen only here, in the
// serial section — which is why Allow/Record inside the event loop
// never need to agree across domains mid-interval) and per-node hedge
// budgets reset for the interval that begins at this boundary.
// Inactive nodes roll too: an open breaker's countdown must keep
// ticking while its node sits out an autoscale trough.
func (f *Fleet) rollResilience() {
	if f.resil == nil {
		return
	}
	if f.resil.Breaker != nil {
		for _, n := range f.nodes {
			if n.breaker.Roll() {
				f.breakerOpens++
			}
		}
	}
	if f.resil.HedgeBudget > 0 {
		for _, n := range f.nodes {
			n.hedgeLeft = f.resil.HedgeBudget
		}
	}
}

// harvestResilience folds one interval's resilience counters into the
// run totals and resets the coordinator's breaker-open count (the
// per-loop counters are the caller's to reset).
func (f *Fleet) harvestResilience(retries, timeouts, rateLimited, hedgeCancels int) {
	f.stats.Retries += retries
	f.stats.Timeouts += timeouts
	f.stats.BreakerOpens += f.breakerOpens
	f.stats.RateLimited += rateLimited
	f.stats.HedgeCancels += hedgeCancels
	f.breakerOpens = 0
}

// tick closes the interval ending at the clock's next boundary:
// summarise every active node, merge the fleet sample, re-estimate the
// hedge delay, run the scaling decision, and set up the next interval.
func (f *Fleet) tick() error {
	warming := 0
	for _, n := range f.nodes[:f.active] {
		if n.warmLeft > 0 {
			warming++
		}
	}
	tEnd := f.clock.Now() + f.dt
	f.summarize(tEnd)
	// The learning step runs here, in the serial section between the
	// parallel summaries and the fleet merge: every node's measured
	// sample for the closing interval is final, no events are in
	// flight, and the decision order (ascending node id) is fixed — so
	// learn-enabled runs keep the worker-invariance and seed-
	// determinism contracts.
	if err := f.learnStep(tEnd); err != nil {
		return err
	}
	f.rollResilience()

	fs := f.merger.MergeInterval(f.samples[:f.active], f.opts.StragglerFactor)
	fs.T = tEnd
	var energy float64
	for _, n := range f.nodes {
		energy += n.lastEnergyJ
	}
	fs.EnergyJ = energy
	fs.Hedges = f.hedges
	fs.HedgeWins = f.hedgeWins
	fs.Steals = f.steals
	fs.Warming = warming
	fs.Retries = f.retries
	fs.Timeouts = f.timeouts
	fs.BreakerOpens = f.breakerOpens
	fs.RateLimited = f.rateLimited
	fs.HedgeCancels = f.hedgeCancels
	f.annotateLearn(&fs)
	f.annotateFaults(&fs, f.lost-f.prevLost)
	f.prevLost = f.lost
	f.fleet.Add(fs)
	f.stats.Hedges += f.hedges
	f.stats.HedgeWins += f.hedgeWins
	f.stats.Steals += f.steals
	f.stats.WarmupIntervals += warming
	f.stats.NodeIntervals += f.active
	f.harvestResilience(f.retries, f.timeouts, f.rateLimited, f.hedgeCancels)
	f.retries, f.timeouts, f.rateLimited, f.hedgeCancels = 0, 0, 0, 0

	// Hedge delay for the next interval: the configured quantile of the
	// interval that just ended (carried forward through empty intervals).
	if f.hedging && len(f.intervalSojourns) > 0 {
		f.sortScratch = append(f.sortScratch[:0], f.intervalSojourns...)
		stats.SortFloats(f.sortScratch)
		if q, err := stats.PercentileSorted(f.sortScratch, f.hedgeQ); err == nil {
			f.hedgeWait = q
		}
	}
	measuredRPS := float64(f.primaries) / f.dt
	f.stats.Requests += f.primaries
	f.intervalSojourns = f.intervalSojourns[:0]
	f.hedges, f.hedgeWins, f.steals, f.primaries = 0, 0, 0, 0

	// Warm-up bookkeeping: a node activated at THIS boundary starts its
	// full warm-up next interval; nodes that just spent an interval
	// warming count it down here, before the scaling decision.
	for _, n := range f.nodes[:f.active] {
		if n.warmLeft > 0 {
			n.warmLeft--
		}
	}

	f.clock.Tick()
	t := f.clock.Now()
	// Services started from here on (migrations, idle kicks) belong to
	// the interval that begins now.
	f.tickEnd = t + f.dt
	// Fault transitions and the predictive detector run here, with the
	// event loop quiescent and every cross-node effect confined to this
	// serial section — fault-enabled runs stay a pure function of
	// (seed, domain count) at any worker count.
	if err := f.faultStep(t); err != nil {
		return err
	}
	f.detectStep(t)
	// Federation runs in the serial section with the event loop
	// quiescent, mirroring the interval-mode cluster: reading and
	// rewriting per-node tables here cannot race with policy decisions,
	// and results stay independent of the worker count. A partition heal
	// forces an extra round so accumulated deltas flush immediately.
	if f.fed != nil && (f.fed.Due(f.clock.Steps()) || f.healPending) {
		if err := f.fed.Sync(f.clock.Steps(), f.isActiveFn); err != nil {
			return err
		}
		f.stats.SyncRounds++
	}
	f.healPending = false
	if f.ctl != nil {
		if err := f.autoscaleStep(t, measuredRPS); err != nil {
			return err
		}
	}
	// Idle servers pick up queues outside the completion path: warm-up
	// expiries, freshly migrated requests, and (with stealing) fully
	// idle nodes rescuing a deep peer. Down nodes serve nothing;
	// draining nodes still work their own residual queue.
	for _, n := range f.nodes[:f.active] {
		if n.down {
			continue
		}
		if n.warmLeft == 0 || f.warmFactor > 0 {
			f.kickIdle(n, t)
		}
	}
	return f.refreshInterval(t)
}

// Run executes the fleet DES for the given horizon (seconds); a zero
// horizon uses the pattern's natural duration.
func (f *Fleet) Run(horizon float64) (Result, error) {
	if f.failed != nil {
		return Result{}, f.failed
	}
	if horizon <= 0 {
		horizon = f.opts.Pattern.Duration()
	}
	if horizon <= 0 {
		return Result{}, errors.New("clusterdes: no horizon (unbounded pattern and no explicit duration)")
	}
	fail := func(err error) (Result, error) {
		f.failed = err
		return Result{}, err
	}
	if err := f.initFaults(horizon); err != nil {
		return fail(err)
	}
	if f.sh != nil {
		if err := f.sh.run(horizon); err != nil {
			return fail(err)
		}
		return f.sh.result(), nil
	}
	if f.clock.Steps() == 0 && f.fleet.Len() == 0 {
		f.nextArrival = math.Inf(1)
		if err := f.refreshInterval(0); err != nil {
			return fail(err)
		}
	}
	for f.clock.Now() < horizon {
		f.runInterval(f.clock.Now() + f.dt)
		if err := f.tick(); err != nil {
			return fail(err)
		}
	}
	return f.result(), nil
}

// result assembles the run's record, computing the end-to-end latency
// distribution over every completed request.
func (f *Fleet) result() Result {
	res := Result{
		Fleet: f.fleet,
		Nodes: make([]*telemetry.Trace, len(f.nodes)),
		Stats: f.stats,
	}
	for i, n := range f.nodes {
		res.Nodes[i] = n.trace
	}
	res.Latency.Completed = int(f.lat.seen)
	res.Latency.Dropped = f.dropped
	res.Latency.TimedOut = f.timedOut
	res.Latency.Lost = f.lost
	res.Stats.Lost = f.lost
	if len(f.lat.sample) > 0 {
		res.Latency.Mean = f.lat.sum / float64(f.lat.seen)
		stats.SortFloats(f.lat.sample)
		res.Latency.P50, _ = stats.PercentileSorted(f.lat.sample, 0.50)
		res.Latency.P90, _ = stats.PercentileSorted(f.lat.sample, 0.90)
		res.Latency.P95, _ = stats.PercentileSorted(f.lat.sample, 0.95)
		res.Latency.P99, _ = stats.PercentileSorted(f.lat.sample, 0.99)
	}
	return res
}

// Uniform builds n identical node definitions over one spec and
// workload at the default configuration.
func Uniform(n int, spec *platform.Spec, wl *workload.Model) ([]NodeConfig, error) {
	if n <= 0 {
		return nil, errors.New("clusterdes: non-positive node count")
	}
	nodes := make([]NodeConfig, n)
	for i := range nodes {
		nodes[i] = NodeConfig{Spec: spec, Workload: wl}
	}
	return nodes, nil
}
