package clusterdes_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hipster/internal/autoscale"
	"hipster/internal/cluster"
	"hipster/internal/clusterdes"
	"hipster/internal/core"
	"hipster/internal/fleettest"
	"hipster/internal/loadgen"
	"hipster/internal/names"
	"hipster/internal/platform"
	"hipster/internal/resilience"
	"hipster/internal/workload"
)

// buildDES returns a DESBuildFunc over an 8-node Web-Search fleet with
// the given mitigation and optional autoscaling; Web-Search's tens of
// requests per second keep the event counts small enough for the
// property harness to run many fleets.
func buildDES(mit clusterdes.Mitigation, as *clusterdes.AutoscaleOptions, pattern loadgen.Pattern) fleettest.DESBuildFunc {
	return func(seed int64) (clusterdes.Options, error) {
		nodes, err := clusterdes.Uniform(8, platform.JunoR1(), workload.WebSearch())
		if err != nil {
			return clusterdes.Options{}, err
		}
		return clusterdes.Options{
			Nodes:      nodes,
			Pattern:    pattern,
			Mitigation: mit,
			Seed:       seed,
			Autoscale:  as,
		}, nil
	}
}

// stdResilience returns the full resilience surface for the property
// matrices — retries with backoff, tight per-attempt deadlines, a
// breaker, per-node rate limiting, hedge budgets and cancellation —
// fresh per call so builders stay independent.
func stdResilience() *resilience.Options {
	return &resilience.Options{
		MaxRetries:   2,
		Timeout:      0.4,
		Backoff:      resilience.Backoff{Base: 0.02, Cap: 0.2, Jitter: 0.2},
		Breaker:      &resilience.BreakerOptions{FailureThreshold: 0.5, MinSamples: 5},
		RateLimit:    &resilience.RateLimitOptions{RPS: 40},
		CancelHedges: true,
		HedgeBudget:  25,
	}
}

// withResilience layers the standard resilience options onto a builder.
func withResilience(build fleettest.DESBuildFunc) fleettest.DESBuildFunc {
	return func(seed int64) (clusterdes.Options, error) {
		opts, err := build(seed)
		if err != nil {
			return opts, err
		}
		opts.Resilience = stdResilience()
		return opts, nil
	}
}

// withLearn closes the RL loop on a builder with a short learning
// phase; params are rebuilt per call so runs cannot leak table state
// into each other.
func withLearn(build fleettest.DESBuildFunc) fleettest.DESBuildFunc {
	return func(seed int64) (clusterdes.Options, error) {
		opts, err := build(seed)
		if err != nil {
			return opts, err
		}
		params := core.DefaultParams()
		params.LearnSecs = 20
		opts.Learn = &clusterdes.LearnOptions{Params: &params}
		return opts, nil
	}
}

type desVariant struct {
	name    string
	build   fleettest.DESBuildFunc
	horizon float64
}

// desVariants enumerates the DES feature combinations the property
// harness must hold over: plain, hedged, work-stealing, autoscaled with
// warm-up, and the resilience layer composed with each mitigation, with
// autoscaling, and with in-DES learning.
func desVariants() []desVariant {
	steady := loadgen.Constant{Frac: 0.6}
	bursty := loadgen.Spike{Base: 0.2, Peak: 0.35, EverySecs: 30, SpikeSecs: 10, Horizon: 90}
	return []desVariant{
		{"plain", buildDES(nil, nil, steady), 60},
		{"hedged", buildDES(clusterdes.Hedged{}, nil, steady), 60},
		{"stealing", buildDES(clusterdes.WorkStealing{}, nil, steady), 60},
		{"autoscaled-warmup", buildDES(nil, &clusterdes.AutoscaleOptions{
			MinNodes:        2,
			WarmupIntervals: 3,
		}, bursty), 90},
		{"autoscaled-warmup-hedged", buildDES(clusterdes.Hedged{}, &clusterdes.AutoscaleOptions{
			MinNodes:           2,
			WarmupIntervals:    2,
			WarmupFactor:       0.25,
			Policy:             autoscale.QueueDepth{},
			CooldownIntervals:  3,
			DownAfterIntervals: 2,
		}, bursty), 90},
		{"autoscaled-warmup-stealing", buildDES(clusterdes.WorkStealing{}, &clusterdes.AutoscaleOptions{
			MinNodes:        2,
			WarmupIntervals: 3,
		}, bursty), 90},
		{"resilient", withResilience(buildDES(nil, nil, steady)), 60},
		{"resilient-hedged", withResilience(buildDES(clusterdes.Hedged{}, nil, steady)), 60},
		{"resilient-stealing", withResilience(buildDES(clusterdes.WorkStealing{}, nil, steady)), 60},
		{"resilient-autoscaled", withResilience(buildDES(clusterdes.Hedged{}, &clusterdes.AutoscaleOptions{
			MinNodes:        2,
			WarmupIntervals: 2,
		}, bursty)), 90},
		{"resilient-learn", withLearn(withResilience(buildDES(nil, nil, steady))), 60},
	}
}

// TestProperties asserts the two fleet invariants — bit-identical
// results at any worker count, and a seed that fully determines (and
// actually varies) the run — over every DES feature combination.
func TestProperties(t *testing.T) {
	for _, v := range desVariants() {
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			fleettest.AssertDESWorkerInvariance(t, v.build, 42, v.horizon)
			fleettest.AssertDESSeedDeterminism(t, v.build, 42, v.horizon)
		})
	}
}

// TestResilienceConservation drives an overload phase through every
// resilience composition — serial and sharded — and demands exact
// request bookkeeping once the fleet drains: admitted == completed +
// dropped + timed out, with the resilience machinery demonstrably
// active (deadlines firing, retries re-issued).
func TestResilienceConservation(t *testing.T) {
	overload := phasePattern{frac: 1.2, until: 30, span: 60}
	builds := []struct {
		name  string
		build fleettest.DESBuildFunc
	}{
		{"resilient", withResilience(buildDES(nil, nil, overload))},
		{"resilient-hedged", withResilience(buildDES(clusterdes.Hedged{}, nil, overload))},
		{"resilient-stealing", withResilience(buildDES(clusterdes.WorkStealing{}, nil, overload))},
		{"resilient-autoscaled", withResilience(buildDES(nil, &clusterdes.AutoscaleOptions{
			MinNodes:        2,
			WarmupIntervals: 2,
		}, overload))},
		{"resilient-learn", withLearn(withResilience(buildDES(nil, nil, overload)))},
	}
	for _, b := range builds {
		for _, domains := range []int{0, 2} {
			name := fmt.Sprintf("%s/domains=%d", b.name, domains)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				opts, err := b.build(42)
				if err != nil {
					t.Fatal(err)
				}
				opts.Domains = domains
				res := fleettest.AssertDESConservation(t, opts, 60)
				if res.Stats.Timeouts == 0 {
					t.Error("overload phase fired no attempt deadlines")
				}
				if res.Stats.Retries == 0 {
					t.Error("overload phase re-issued no attempts")
				}
			})
		}
	}
}

func runFleet(t *testing.T, mit clusterdes.Mitigation, splitter cluster.Splitter, horizon float64) clusterdes.Result {
	t.Helper()
	nodes, err := clusterdes.Uniform(8, platform.JunoR1(), workload.WebSearch())
	if err != nil {
		t.Fatal(err)
	}
	fl, err := clusterdes.New(clusterdes.Options{
		Nodes:      nodes,
		Pattern:    loadgen.Constant{Frac: 0.6},
		Splitter:   splitter,
		Mitigation: mit,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMitigationImprovesTail is the subsystem's reason to exist: on the
// same seed, both mitigation policies must cut the fleet's end-to-end
// P99 against the unmitigated baseline, without losing completions.
func TestMitigationImprovesTail(t *testing.T) {
	base := runFleet(t, nil, nil, 120)
	if base.Latency.Completed == 0 {
		t.Fatal("baseline completed no requests")
	}
	if base.Stats.Hedges != 0 || base.Stats.Steals != 0 {
		t.Fatalf("unmitigated run recorded mitigation activity: %+v", base.Stats)
	}
	for _, mit := range []clusterdes.Mitigation{clusterdes.Hedged{}, clusterdes.WorkStealing{}} {
		res := runFleet(t, mit, nil, 120)
		if res.Latency.P99 >= base.Latency.P99 {
			t.Errorf("%s: P99 %.4fs did not improve on the unmitigated %.4fs",
				mit.Name(), res.Latency.P99, base.Latency.P99)
		}
		if got, want := res.Latency.Completed, base.Latency.Completed*99/100; got < want {
			t.Errorf("%s: completed %d < %d", mit.Name(), got, want)
		}
	}
	hedged := runFleet(t, clusterdes.Hedged{}, nil, 120)
	if hedged.Stats.Hedges == 0 || hedged.Stats.HedgeWins == 0 {
		t.Errorf("hedged run issued %d hedges, won %d; want both > 0", hedged.Stats.Hedges, hedged.Stats.HedgeWins)
	}
	if hedged.Stats.HedgeWins > hedged.Stats.Hedges {
		t.Errorf("hedge wins %d exceed hedges issued %d", hedged.Stats.HedgeWins, hedged.Stats.Hedges)
	}
	stealing := runFleet(t, clusterdes.WorkStealing{}, nil, 120)
	if stealing.Stats.Steals == 0 {
		t.Error("work-stealing run stole nothing")
	}
}

// TestSplitters runs the DES through every built-in splitter, checking
// the routing weights actually reach the nodes (every node serves
// traffic under every splitter).
func TestSplitters(t *testing.T) {
	for _, name := range cluster.SplitterNames() {
		sp, err := cluster.SplitterByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res := runFleet(t, nil, sp, 60)
		for i, tr := range res.Nodes {
			if tr.Len() == 0 {
				t.Fatalf("splitter %s: node %d recorded no samples", name, i)
			}
			var offered float64
			for _, s := range tr.Samples {
				offered += s.OfferedRPS
			}
			if offered == 0 {
				t.Errorf("splitter %s: node %d never received load", name, i)
			}
		}
	}
}

// TestWarmupDegradesService checks the warm-up model has teeth: the
// same bursty autoscaled day with a serves-nothing warm-up must consume
// warm-up node-intervals and end with a worse end-to-end tail than
// instant activation.
func TestWarmupDegradesService(t *testing.T) {
	run := func(warmup int) clusterdes.Result {
		t.Helper()
		build := buildDES(nil, &clusterdes.AutoscaleOptions{
			MinNodes:        2,
			WarmupIntervals: warmup,
		}, loadgen.Spike{Base: 0.2, Peak: 0.4, EverySecs: 40, SpikeSecs: 15, Horizon: 160})
		opts, err := build(42)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := clusterdes.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fl.Run(160)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	instant := run(0)
	warmed := run(4)
	if instant.Stats.WarmupIntervals != 0 {
		t.Errorf("instant activation recorded %d warm-up intervals", instant.Stats.WarmupIntervals)
	}
	if warmed.Stats.WarmupIntervals == 0 {
		t.Error("warm-up run recorded no warm-up intervals")
	}
	if warmed.Latency.P99 <= instant.Latency.P99 {
		t.Errorf("warm-up P99 %.4fs not worse than instant activation %.4fs",
			warmed.Latency.P99, instant.Latency.P99)
	}
	if warmed.Fleet.WarmupIntervals() != warmed.Stats.WarmupIntervals {
		t.Errorf("fleet trace warm-up intervals %d != stats %d",
			warmed.Fleet.WarmupIntervals(), warmed.Stats.WarmupIntervals)
	}
}

// TestQueueBoundDrops checks the per-node queue bound sheds load under
// saturation instead of building an unbounded queue.
func TestQueueBoundDrops(t *testing.T) {
	nodes, err := clusterdes.Uniform(2, platform.JunoR1(), workload.WebSearch())
	if err != nil {
		t.Fatal(err)
	}
	fl, err := clusterdes.New(clusterdes.Options{
		Nodes:    nodes,
		Pattern:  loadgen.Constant{Frac: 1.5}, // sustained overload
		Seed:     42,
		MaxQueue: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Dropped == 0 {
		t.Error("saturated bounded-queue fleet dropped nothing")
	}
	for i, tr := range res.Nodes {
		for _, s := range tr.Samples {
			if s.Backlog > 8 {
				t.Fatalf("node %d queue depth %v exceeds the bound", i, s.Backlog)
			}
		}
	}
}

// TestMitigationByName sweeps the constructor over its registered
// names and checks the unknown-name error contract shared by every
// ByName family.
func TestMitigationByName(t *testing.T) {
	for _, name := range clusterdes.MitigationNames() {
		m, err := clusterdes.MitigationByName(name)
		if err != nil {
			t.Fatalf("registered name %q rejected: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("MitigationByName(%q).Name() = %q", name, m.Name())
		}
	}
	_, err := clusterdes.MitigationByName("nope")
	if !errors.Is(err, names.ErrUnknown) {
		t.Fatalf("unknown mitigation error = %v, want names.ErrUnknown", err)
	}
	for _, name := range clusterdes.MitigationNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestValidation sweeps the constructor's error paths.
func TestValidation(t *testing.T) {
	spec := platform.JunoR1()
	wl := workload.WebSearch()
	good := func() clusterdes.Options {
		nodes, _ := clusterdes.Uniform(2, spec, wl)
		return clusterdes.Options{Nodes: nodes, Pattern: loadgen.Constant{Frac: 0.5}, Seed: 1}
	}
	cases := []struct {
		name string
		mod  func(*clusterdes.Options)
	}{
		{"no nodes", func(o *clusterdes.Options) { o.Nodes = nil }},
		{"nil pattern", func(o *clusterdes.Options) { o.Pattern = nil }},
		{"negative workers", func(o *clusterdes.Options) { o.Workers = -1 }},
		{"negative queue bound", func(o *clusterdes.Options) { o.MaxQueue = -1 }},
		{"negative interval", func(o *clusterdes.Options) { o.IntervalSecs = -1 }},
		{"bad hedge quantile", func(o *clusterdes.Options) { o.Mitigation = clusterdes.Hedged{Quantile: 1.5} }},
		{"negative steal depth", func(o *clusterdes.Options) {
			o.Mitigation = clusterdes.WorkStealing{MinDepth: -1}
		}},
		{"negative retries", func(o *clusterdes.Options) {
			o.Resilience = &resilience.Options{MaxRetries: -1}
		}},
		{"retries beyond budget", func(o *clusterdes.Options) {
			o.Resilience = &resilience.Options{MaxRetries: resilience.MaxRetryBudget + 1}
		}},
		{"negative timeout", func(o *clusterdes.Options) {
			o.Resilience = &resilience.Options{Timeout: -1}
		}},
		{"bad backoff", func(o *clusterdes.Options) {
			o.Resilience = &resilience.Options{MaxRetries: 1, Backoff: resilience.Backoff{Base: 2, Cap: 1}}
		}},
		{"bad breaker threshold", func(o *clusterdes.Options) {
			o.Resilience = &resilience.Options{Breaker: &resilience.BreakerOptions{FailureThreshold: 2}}
		}},
		{"rate limit without rate", func(o *clusterdes.Options) {
			o.Resilience = &resilience.Options{RateLimit: &resilience.RateLimitOptions{}}
		}},
		{"nil node spec", func(o *clusterdes.Options) { o.Nodes[0].Spec = nil }},
		{"nil node workload", func(o *clusterdes.Options) { o.Nodes[0].Workload = nil }},
		{"autoscale beyond roster", func(o *clusterdes.Options) {
			o.Autoscale = &clusterdes.AutoscaleOptions{MaxNodes: 99}
		}},
		{"bad warm factor", func(o *clusterdes.Options) {
			o.Autoscale = &clusterdes.AutoscaleOptions{WarmupFactor: 1}
		}},
		{"negative warm-up", func(o *clusterdes.Options) {
			o.Autoscale = &clusterdes.AutoscaleOptions{WarmupIntervals: -1}
		}},
		{"initial outside bounds", func(o *clusterdes.Options) {
			o.Autoscale = &clusterdes.AutoscaleOptions{MinNodes: 2, InitialNodes: 1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := good()
			tc.mod(&opts)
			if _, err := clusterdes.New(opts); err == nil {
				t.Fatal("invalid options accepted")
			}
		})
	}
	if _, err := clusterdes.Uniform(0, spec, wl); err == nil {
		t.Fatal("Uniform accepted a zero node count")
	}
}

// TestFleetCounters checks the fleet-trace counter plumbing end to end:
// the merged samples carry the mitigation counters and the summary
// totals match the per-interval sums.
func TestFleetCounters(t *testing.T) {
	res := runFleet(t, clusterdes.Hedged{}, nil, 120)
	var hedges, wins int
	for _, s := range res.Fleet.Samples {
		hedges += s.Hedges
		wins += s.HedgeWins
	}
	if hedges != res.Stats.Hedges || wins != res.Stats.HedgeWins {
		t.Errorf("fleet samples sum to %d/%d hedges/wins, stats say %d/%d",
			hedges, wins, res.Stats.Hedges, res.Stats.HedgeWins)
	}
	sum := res.Summarize()
	if sum.Hedges != res.Stats.Hedges || sum.HedgeWins != res.Stats.HedgeWins {
		t.Errorf("summary hedges %d/%d != stats %d/%d",
			sum.Hedges, sum.HedgeWins, res.Stats.Hedges, res.Stats.HedgeWins)
	}
	ti, tw := res.Fleet.TotalHedges()
	if ti != hedges || tw != wins {
		t.Errorf("TotalHedges() = %d/%d, want %d/%d", ti, tw, hedges, wins)
	}
}
