package clusterdes_test

import (
	"testing"

	"hipster/internal/clusterdes"
	"hipster/internal/loadgen"
	"hipster/internal/platform"
	"hipster/internal/workload"
)

// evalOpts builds a small learn-enabled fleet for Evaluate tests.
func evalOpts(seed int64) clusterdes.Options {
	nodes, err := clusterdes.Uniform(4, platform.JunoR1(), workload.WebSearch())
	if err != nil {
		panic(err)
	}
	return clusterdes.Options{
		Nodes:   nodes,
		Pattern: loadgen.Constant{Frac: 0.5},
		Seed:    seed,
		Learn:   &clusterdes.LearnOptions{},
	}
}

func TestEvaluateMetrics(t *testing.T) {
	m, err := clusterdes.Evaluate(evalOpts(42), 60)
	if err != nil {
		t.Fatal(err)
	}
	if m.P99 <= 0 {
		t.Errorf("P99 = %v, want positive", m.P99)
	}
	if m.QoSAttainment < 0 || m.QoSAttainment > 1 {
		t.Errorf("QoSAttainment = %v outside [0, 1]", m.QoSAttainment)
	}
	if m.EnergyJ <= 0 {
		t.Errorf("EnergyJ = %v, want positive", m.EnergyJ)
	}
	if want := m.EnergyJ / 60; m.MeanPowerW != want {
		t.Errorf("MeanPowerW = %v, want EnergyJ/horizon = %v", m.MeanPowerW, want)
	}
	if m.Requests == 0 || m.Completed == 0 {
		t.Errorf("empty request ledger: %+v", m)
	}
	if m.Completed > m.Requests {
		t.Errorf("completed %d exceeds issued %d", m.Completed, m.Requests)
	}
}

// TestEvaluatePure pins the purity the tuner leans on: Evaluate is a
// function of (opts, horizon) alone — same inputs, same metrics —
// while a different seed yields a different run.
func TestEvaluatePure(t *testing.T) {
	a, err := clusterdes.Evaluate(evalOpts(42), 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := clusterdes.Evaluate(evalOpts(42), 60)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same (opts, horizon) diverged:\n%+v\n%+v", a, b)
	}
	c, err := clusterdes.Evaluate(evalOpts(7), 60)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical metrics")
	}
}

func TestEvaluateError(t *testing.T) {
	if _, err := clusterdes.Evaluate(clusterdes.Options{}, 10); err == nil {
		t.Fatal("Evaluate on empty options succeeded")
	}
}
