package clusterdes_test

import (
	"testing"

	"hipster/internal/clusterdes"
)

func TestPartitionDomains(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		want []int
	}{
		{n: 8, d: 1, want: []int{0, 8}},
		{n: 8, d: 2, want: []int{0, 4, 8}},
		{n: 8, d: 3, want: []int{0, 3, 6, 8}},
		{n: 3, d: 2, want: []int{0, 2, 3}},
		{n: 3, d: 8, want: []int{0, 1, 2, 3}},
		{n: 1, d: 1, want: []int{0, 1}},
		{n: 5, d: 0, want: []int{0, 5}},
	} {
		got := clusterdes.PartitionDomains(tc.n, tc.d)
		if len(got) != len(tc.want) {
			t.Errorf("PartitionDomains(%d, %d) = %v, want %v", tc.n, tc.d, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("PartitionDomains(%d, %d) = %v, want %v", tc.n, tc.d, got, tc.want)
				break
			}
		}
	}
	if got := clusterdes.PartitionDomains(0, 3); got != nil {
		t.Errorf("PartitionDomains(0, 3) = %v, want nil", got)
	}
}

// FuzzPartitionDomains checks the partition invariants the sharded
// engine's correctness rests on: no empty domain, every node in
// exactly one domain, and near-even sizes, for arbitrary inputs.
func FuzzPartitionDomains(f *testing.F) {
	f.Add(8, 3)
	f.Add(1, 1)
	f.Add(256, 8)
	f.Add(5, 9)
	f.Add(17, 16)
	f.Add(3, -2)
	f.Fuzz(func(t *testing.T, n, d int) {
		if n < 1 || n > 1<<16 {
			t.Skip()
		}
		starts := clusterdes.PartitionDomains(n, d)
		want := d
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		if len(starts) != want+1 {
			t.Fatalf("PartitionDomains(%d, %d): %d boundaries, want %d", n, d, len(starts), want+1)
		}
		if starts[0] != 0 || starts[len(starts)-1] != n {
			t.Fatalf("PartitionDomains(%d, %d) = %v: does not cover [0, %d)", n, d, starts, n)
		}
		// Strictly increasing boundaries mean no domain is empty, and
		// together with exact coverage, that every node id belongs to
		// exactly one domain.
		lo, hi := n, 0
		for k := 0; k+1 < len(starts); k++ {
			size := starts[k+1] - starts[k]
			if size < 1 {
				t.Fatalf("PartitionDomains(%d, %d) = %v: domain %d is empty", n, d, starts, k)
			}
			if size < lo {
				lo = size
			}
			if size > hi {
				hi = size
			}
		}
		if hi-lo > 1 {
			t.Fatalf("PartitionDomains(%d, %d) = %v: uneven split (sizes %d..%d)", n, d, starts, lo, hi)
		}
	})
}
