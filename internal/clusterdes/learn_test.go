package clusterdes

import (
	"strings"
	"testing"

	"hipster/internal/cluster"
	"hipster/internal/core"
	"hipster/internal/loadgen"
	"hipster/internal/platform"
	"hipster/internal/policy"
	"hipster/internal/workload"
)

// drainedSpike is a spiky load with a zero-load tail, so by the
// horizon every admitted request has completed or been dropped and the
// conservation checks can demand exact bookkeeping.
type drainedSpike struct {
	spike loadgen.Spike
	until float64
	span  float64
}

func (p drainedSpike) LoadAt(t float64) float64 {
	if t < p.until {
		return p.spike.LoadAt(t)
	}
	return 0
}

func (p drainedSpike) Duration() float64 { return p.span }

// learnFleet builds a small learn-enabled fleet under a spiky load, with
// a learning phase short enough that the run crosses into exploitation.
func learnFleet(t *testing.T, mutate func(*Options)) *Fleet {
	t.Helper()
	nodes, err := Uniform(4, platform.JunoR1(), workload.WebSearch())
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	params.LearnSecs = 30
	opts := Options{
		Nodes: nodes,
		Pattern: drainedSpike{
			spike: loadgen.Spike{Base: 0.3, Peak: 0.7, EverySecs: 20, SpikeSecs: 6},
			until: 80,
			span:  95,
		},
		Seed:  5,
		Learn: &LearnOptions{Params: &params},
	}
	if mutate != nil {
		mutate(&opts)
	}
	fl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

func assertLearnConserved(t *testing.T, res Result) {
	t.Helper()
	if res.Stats.Requests == 0 {
		t.Fatal("no requests generated")
	}
	if got := res.Latency.Completed + res.Latency.Dropped; got != res.Stats.Requests {
		t.Errorf("conservation violated: %d completed + %d dropped != %d requests",
			res.Latency.Completed, res.Latency.Dropped, res.Stats.Requests)
	}
}

// TestLearnDecidesAndReconfigures checks the loop actually closes: one
// decision per active node per interval, at least one configuration
// change applied, and the per-node traces record the changed operating
// points — all without losing a single request to the reconfiguration
// drain.
func TestLearnDecidesAndReconfigures(t *testing.T) {
	fl := learnFleet(t, nil)
	res, err := fl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	assertLearnConserved(t, res)
	intervals := res.Fleet.Len()
	if want := intervals * 4; res.Stats.LearnDecisions != want {
		t.Errorf("LearnDecisions = %d, want %d (4 nodes x %d intervals)", res.Stats.LearnDecisions, want, intervals)
	}
	if res.Stats.CoreMigrations+res.Stats.DVFSChanges == 0 {
		t.Error("learning never changed a configuration on a spiky day")
	}
	configs := map[[3]int]bool{}
	for _, s := range res.Nodes[0].Samples {
		configs[[3]int{s.NBig, s.NSmall, s.BigFreqMHz}] = true
	}
	if len(configs) < 2 {
		t.Errorf("node 0 trace records %d distinct configurations, want >= 2", len(configs))
	}
	if res.Fleet.LearningIntervals() == 0 {
		t.Error("no learning-phase intervals recorded in the fleet trace")
	}
	if got := res.Summarize().LearningIntervals; got == 0 {
		t.Error("summary lost the learning-interval count")
	}
}

// TestLearnWithMitigations runs the learning loop under each straggler
// mitigation: reconfiguration drains and hedge/steal bookkeeping must
// compose without losing requests.
func TestLearnWithMitigations(t *testing.T) {
	for _, mit := range []Mitigation{Hedged{}, WorkStealing{}} {
		mit := mit
		t.Run(mit.Name(), func(t *testing.T) {
			t.Parallel()
			fl := learnFleet(t, func(o *Options) { o.Mitigation = mit })
			res, err := fl.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			assertLearnConserved(t, res)
		})
	}
}

// TestLearnFederation checks the DES-mode federation plumbing: sync
// rounds run on schedule, and autoscale activations warm-start from the
// fleet table while departures flush into it.
func TestLearnFederation(t *testing.T) {
	fl := learnFleet(t, func(o *Options) {
		o.Learn.Federation = &cluster.FederationOptions{SyncEvery: 5}
		o.Autoscale = &AutoscaleOptions{MinNodes: 2, WarmupIntervals: 1}
	})
	res, err := fl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	assertLearnConserved(t, res)
	if res.Stats.SyncRounds == 0 {
		t.Error("no federation sync rounds ran")
	}
	st, ok := fl.FederationStats()
	if !ok {
		t.Fatal("FederationStats reported federation disabled")
	}
	if st.Rounds == 0 {
		t.Error("coordinator recorded no sync rounds")
	}
	if res.Stats.Ups > 0 && res.Stats.WarmStarts == 0 {
		t.Error("scale-ups happened but no node warm-started from the fleet table")
	}
	if res.Stats.Downs > 0 && res.Stats.Flushes == 0 {
		t.Error("scale-downs happened but no node flushed its delta")
	}
}

// TestLearnAccessors covers the learning introspection surface.
func TestLearnAccessors(t *testing.T) {
	fl := learnFleet(t, nil)
	if !fl.Learning() {
		t.Error("Learning() false on a learn-enabled fleet")
	}
	if fl.NodePolicy(0) == nil {
		t.Error("NodePolicy(0) nil on a learn-enabled fleet")
	}
	if _, ok := fl.FederationStats(); ok {
		t.Error("FederationStats ok without federation")
	}
	nodes, err := Uniform(2, platform.JunoR1(), workload.WebSearch())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Options{Nodes: nodes, Pattern: loadgen.Constant{Frac: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Learning() {
		t.Error("Learning() true without Options.Learn")
	}
	if plain.NodePolicy(0) != nil {
		t.Error("NodePolicy non-nil without Options.Learn")
	}
}

// TestLearnBuildPolicyErrors checks construction rejects broken policy
// builders.
func TestLearnBuildPolicyErrors(t *testing.T) {
	nodes, err := Uniform(2, platform.JunoR1(), workload.WebSearch())
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Nodes: nodes, Pattern: loadgen.Constant{Frac: 0.5}}

	opts := base
	opts.Learn = &LearnOptions{BuildPolicy: func(int) (policy.Policy, error) {
		return nil, errUnbuildable
	}}
	if _, err := New(opts); err == nil || !strings.Contains(err.Error(), "unbuildable") {
		t.Errorf("builder error not surfaced: %v", err)
	}

	opts = base
	opts.Learn = &LearnOptions{BuildPolicy: func(int) (policy.Policy, error) {
		return nil, nil
	}}
	if _, err := New(opts); err == nil || !strings.Contains(err.Error(), "nil policy") {
		t.Errorf("nil policy not rejected: %v", err)
	}
}

type unbuildableErr struct{}

func (unbuildableErr) Error() string { return "unbuildable" }

var errUnbuildable = unbuildableErr{}
