package clusterdes

// Fault injection and the predictive slow-node detector. Every
// transition here runs in the coordinator's serial section at an
// interval boundary — the event loops are quiescent, cross-node and
// cross-domain effects happen in a fixed order, and the schedule is
// drawn once from its own Seed sub-stream — so fault-enabled runs stay
// a pure function of (Seed, Domains) at any worker count, the same
// contract the fault-free paths honour.

import (
	"fmt"
	"math"

	"hipster/internal/faults"
	"hipster/internal/federation"
	"hipster/internal/policy"
	"hipster/internal/sim"
	"hipster/internal/stats"
	"hipster/internal/telemetry"
)

// initFaults draws the run's fault schedule. The draw depends only on
// (Seed, roster size, horizon) — not on Domains or Workers — which is
// what keeps sharded and serial runs facing identical fault timelines.
func (f *Fleet) initFaults(horizon float64) error {
	if f.faultOpts == nil || f.faultsDrawn {
		return nil
	}
	intervals := int(math.Ceil(horizon / f.dt))
	evs, err := faults.Generate(*f.faultOpts, len(f.nodes), intervals,
		sim.SubRNG(f.opts.Seed, "des-faults"))
	if err != nil {
		return fmt.Errorf("clusterdes: %w", err)
	}
	f.faultEvs = evs
	f.faultsDrawn = true
	return nil
}

// loopOf returns the loop owning node id: the per-domain loop in a
// sharded run, the fleet's own in a serial one.
func (f *Fleet) loopOf(id int) *loop {
	if f.sh != nil {
		return f.sh.domainOf(id)
	}
	return &f.loop
}

// setPartition installs (or clears, cut == 0) the partition cut on the
// fleet and every domain loop, so mid-interval steal/hedge decisions
// see it without reaching for shared coordinator state.
func (f *Fleet) setPartition(cut int) {
	f.loop.partCut = cut
	if f.sh != nil {
		for _, l := range f.sh.domains {
			l.partCut = cut
		}
	}
}

// faultStep applies every schedule event due at this boundary.
func (f *Fleet) faultStep(t float64) error {
	if f.faultOpts == nil {
		return nil
	}
	step := f.clock.Steps()
	for f.faultIdx < len(f.faultEvs) && f.faultEvs[f.faultIdx].Interval <= step {
		ev := f.faultEvs[f.faultIdx]
		f.faultIdx++
		switch ev.Kind {
		case faults.Crash:
			f.crashNode(ev.Node, t, false)
		case faults.Revoke:
			f.crashNode(ev.Node, t, true)
		case faults.Recover, faults.Restore:
			if err := f.reviveNode(ev.Node); err != nil {
				return err
			}
		case faults.RevokeNotice:
			// The notice window: migrate the queue to survivors now,
			// finish what is already in flight, accept nothing new.
			n := f.nodes[ev.Node]
			n.draining = true
			f.stats.Revocations++
			f.drainQueueAny(n, t, false)
		case faults.SlowStart:
			f.nodes[ev.Node].slow = ev.Factor
			f.stats.SlowOnsets++
		case faults.SlowEnd:
			f.nodes[ev.Node].slow = 0
		case faults.PartitionStart:
			f.setPartition(ev.Cut)
			f.stats.Partitions++
		case faults.PartitionEnd:
			f.setPartition(0)
			// Force a sync round at this boundary so the healed side's
			// accumulated deltas flush immediately (see Fleet.tick).
			f.healPending = true
		}
	}
	return nil
}

// crashNode takes node id down with state loss: queued and in-flight
// requests are destroyed (terminal Lost outcome unless another copy or
// timer survives), the TD chain is cut, and the node reports dead
// telemetry until it recovers. A revocation is the same mechanism with
// its own counter — the notice window already drained what it could.
func (f *Fleet) crashNode(id int, t float64, revoked bool) {
	n := f.nodes[id]
	n.draining = false
	n.down = true
	if !revoked {
		f.stats.Crashes++
	}
	f.loseNode(f.loopOf(id), n, t)
	if ep, ok := n.pol.(policy.Episodic); ok {
		ep.EndEpisode()
	}
	n.state.Stepped = false
	n.state.LastOfferedRPS = 0
	n.state.LastAchievedRPS = 0
	n.state.LastBacklog = 0
	n.state.LastTailLatency = 0
	n.state.LastTarget = 0
	if f.predictive {
		f.predEwma[id] = 0
		f.suspect[id] = false
	}
}

// reviveNode brings a crashed or revoked node back: cold by default,
// warm-started from the federation table when learning is on and the
// node can reach the coordinator's side. Unlike a scale-down, a crash
// never flushed the node's delta — state loss is the point — so the
// warm start is a pure pull.
func (f *Fleet) reviveNode(id int) error {
	n := f.nodes[id]
	n.down = false
	n.draining = false
	if f.fed != nil && id < f.active && f.sameSide(id, 0) {
		var bc federation.Broadcast
		warmed, err := f.fed.WarmStart(id, f.clock.Steps(), &bc)
		if err != nil {
			return fmt.Errorf("clusterdes: warm-start of recovered node %d: %w", id, err)
		}
		if warmed {
			f.stats.WarmStarts++
		}
	}
	// Discard interval residue from the outage, exactly like an
	// autoscale reactivation.
	n.arrived, n.completed = 0, 0
	n.sojourns = n.sojourns[:0]
	for i := range n.busy {
		n.busy[i] = 0
	}
	return nil
}

// loseNode destroys node n's queued and in-flight work at time t. Each
// serving slot strands its scheduled completion by bumping the service
// sequence (the heap needs no deletions) and trims the interval's busy
// charge, mirroring cancelService — except nothing pulls new work onto
// a dead node.
func (f *Fleet) loseNode(l *loop, n *desNode, t float64) {
	for s, sid := range n.serving {
		if sid < 0 {
			continue
		}
		n.serving[s] = -1
		n.svcSeq[s]++
		n.busyCount--
		if over := math.Min(n.busyUntil[s], l.tickEnd) - t; over > 0 {
			n.busy[s] -= over
		}
		n.busyUntil[s] = t
		n.idle[s] = true
		f.discardCopy(l, n, sid, t)
	}
	for n.queue.Len() > 0 {
		f.discardCopy(l, n, n.queue.Pop(), t)
	}
}

// discardCopy destroys one copy of request id held by crashed node n,
// releasing the reference the slot or queue entry held. The request is
// Lost only when no other reference can still resolve it: a surviving
// copy, a pending hedge or deadline timer, or a cross-domain partner
// each keep it alive. The node's breaker records a failure — injected
// faults are exactly what breakers exist to observe.
func (f *Fleet) discardCopy(l *loop, n *desNode, id int32, t float64) {
	r := &l.reqs[id]
	l.release(id)
	if r.done {
		return
	}
	if n.breaker != nil {
		n.breaker.Record(false)
	}
	if r.deferRec {
		// One side of a cross-domain hedge pair died; the pair resolves
		// lost only when both copies are gone (the partner may still
		// complete). Mirrors the scale-down copyGone protocol.
		r.copyGone = true
		pl := f.sh.domains[r.crossDom]
		pr := &pl.reqs[r.crossRef]
		if pr.copyGone {
			r.done, pr.done = true, true
			f.sh.coordLost++
			l.release(id)
			pl.release(r.crossRef)
		}
		return
	}
	if r.refs == 0 {
		r.done = true
		l.lost++
		l.free = append(l.free, id)
	}
}

// eligibleTarget reports whether node v may receive migrated or
// re-homed work originating on node from: up, not draining, not a
// predictive suspect, and on from's side of any partition. Without
// faults or the predictive detector it is always true.
func (f *Fleet) eligibleTarget(v *desNode, from int) bool {
	if v.down || v.draining {
		return false
	}
	if f.suspect != nil && f.suspect[v.id] {
		return false
	}
	return f.sameSide(v.id, from)
}

// drainQueueAny migrates node n's queue to eligible survivors, in both
// the serial and sharded paths (a revocation notice or a predictive
// flag, vs. autoscale's deactivation drain which runs inside each
// path's own step). With no eligible target anywhere it leaves the
// queue in place — the node still serves it — rather than dropping.
func (f *Fleet) drainQueueAny(n *desNode, t float64, pred bool) {
	has := false
	for _, v := range f.nodes[:f.active] {
		if v != n && f.eligibleTarget(v, n.id) {
			has = true
			break
		}
	}
	if !has {
		return
	}
	l := f.loopOf(n.id)
	for {
		id2 := l.popLocal(n)
		if id2 < 0 {
			break
		}
		if f.sh != nil {
			f.sh.migrate(l, n, id2, t, pred)
		} else {
			f.migrateOne(n, id2, t, pred)
		}
	}
}

// migrateOne re-homes one request popped off node n's queue to the
// least-committed eligible node, with the same hedge bookkeeping as
// the sharded migrate's same-domain case. Serial path only.
func (f *Fleet) migrateOne(n *desNode, id2 int32, t float64, pred bool) {
	r := &f.reqs[id2]
	var target *desNode
	for _, v := range f.nodes[:f.active] {
		if v == n || !f.eligibleTarget(v, n.id) {
			continue
		}
		if target == nil || v.queue.Len()+v.busyCount < target.queue.Len()+target.busyCount {
			target = v
		}
	}
	if target != nil && f.dispatch(target, id2, t) {
		// Track each copy to its new node so a pending hedge timer
		// keeps avoiding the primary's node and hedge-win attribution
		// stays honest; the two copies landing on one node voids the
		// race — a completion there proves nothing about hedging.
		// (A queued copy is the primary iff it sat on the primary's
		// node: stolen requests are never re-queued, and stealing
		// excludes hedging anyway.)
		if int32(n.id) == r.node {
			r.node = int32(target.id)
			if r.hedgeNode == r.node {
				r.hedgeNode = hedgeVoid
			}
		} else if r.hedgeNode == int32(n.id) {
			if int32(target.id) == r.node {
				r.hedgeNode = hedgeVoid
			} else {
				r.hedgeNode = int32(target.id)
			}
		}
		if pred {
			f.stats.PredMigrations++
		} else {
			f.stats.Migrated++
		}
	} else if r.refs == 0 {
		// No other copy in service and no pending timer: the request
		// is truly dropped. (With refs > 0 a surviving copy — or a
		// hedge timer that will re-issue one, or a deadline timer that
		// will retry it — still resolves it.)
		r.done = true
		f.free = append(f.free, id2)
		f.dropped++
	}
}

// detectStep is the predictive slow-node detector, run every boundary
// when the Predictive mitigation is on. Each node's EWMA tracks its
// drain estimate (backlog over nominal capacity, in seconds); a node
// whose smoothed estimate exceeds Threshold times the fleet median —
// and a floor tied to the workload target, so an idle fleet never
// flags — becomes a suspect: its queue migrates away now, it receives
// no hedges or steals, and requests routed to it hedge after only
// HedgeFraction of the reactive delay. The signal leads the reactive
// quantile hedge because a degraded node's backlog grows as soon as
// service slows, while the sojourn quantile must wait for slow
// completions to land in the estimate.
func (f *Fleet) detectStep(t float64) {
	if !f.predictive {
		return
	}
	f.sortScratch = f.sortScratch[:0]
	for i, n := range f.nodes[:f.active] {
		if n.down {
			f.predEwma[n.id] = 0
			continue
		}
		q := f.samples[i].Backlog / n.nominalCap
		f.predEwma[n.id] = f.predAlpha*q + (1-f.predAlpha)*f.predEwma[n.id]
		if !n.draining {
			f.sortScratch = append(f.sortScratch, f.predEwma[n.id])
		}
	}
	med := 0.0
	if len(f.sortScratch) > 0 {
		stats.SortFloats(f.sortScratch)
		med, _ = stats.PercentileSorted(f.sortScratch, 0.5)
	}
	for _, n := range f.nodes[:f.active] {
		e := f.predEwma[n.id]
		flag := !n.down && !n.draining &&
			e > f.predThresh*med && e > 0.25*n.wl.TargetLatency
		f.suspect[n.id] = flag
		if flag {
			f.stats.PredFlags++
			if f.stats.FirstPredictInterval < 0 {
				f.stats.FirstPredictInterval = f.clock.Steps()
			}
		}
	}
	for i := f.active; i < len(f.nodes); i++ {
		f.suspect[i] = false
	}
	// Drain every suspect's queue while it stays flagged; new arrivals
	// it receives mid-interval hedge early rather than migrate.
	for _, n := range f.nodes[:f.active] {
		if f.suspect[n.id] {
			f.drainQueueAny(n, t, true)
		}
	}
	hw := f.hedgeWait
	if f.sh != nil {
		hw = f.sh.domains[0].hedgeWait
	}
	w := math.Inf(1)
	if !math.IsInf(hw, 1) {
		w = hw * f.predFrac
	}
	f.suspectWait = w
	if f.sh != nil {
		for _, l := range f.sh.domains {
			l.suspectWait = w
		}
	}
}

// annotateFaults attaches the boundary's fault telemetry to the merged
// fleet sample: the interval's lost count and the fleet's current
// down/slow/partitioned/suspect populations.
func (f *Fleet) annotateFaults(fs *telemetry.FleetSample, lostDelta int) {
	if f.faultOpts == nil && !f.predictive {
		return
	}
	fs.Lost = lostDelta
	for _, n := range f.nodes[:f.active] {
		if n.down {
			fs.DownNodes++
		}
		if n.slow > 0 {
			fs.SlowNodes++
		}
		if f.suspect != nil && f.suspect[n.id] {
			fs.Suspects++
		}
		if f.loop.partCut != 0 && n.id >= f.loop.partCut {
			fs.Partitioned++
		}
	}
}
