package clusterdes

import (
	"testing"

	"hipster/internal/cluster"
	"hipster/internal/faults"
)

// partitionScript severs nodes {2, 3} from the coordinator side between
// the boundaries closing intervals 10 and 20.
var partitionScript = &faults.Options{Script: []faults.Event{
	{Interval: 10, Kind: faults.PartitionStart, Node: -1, Cut: 2},
	{Interval: 20, Kind: faults.PartitionEnd, Node: -1},
}}

// TestPartitionGatesFederationSync pins how injected partitions compose
// with federation (and with the Participation dropout the -sync-dropout
// flag models): a partitioned node is skipped on both legs of every
// round while the cut is up, keeps learning locally and accumulates its
// delta, and the heal forces an extra round at its own boundary so the
// severed side's experience flushes immediately instead of waiting out
// the sync period. The report counts are exact because the roster is
// fixed (no autoscale) and the schedule is scripted: rounds fire at
// every third boundary of the 95-interval run (31 rounds) plus the
// forced heal round at 20; the three rounds during the cut (12, 15, 18)
// see only the coordinator-side pair.
func TestPartitionGatesFederationSync(t *testing.T) {
	run := func(t *testing.T, participation func(nodeID, interval int) bool) (Result, *Fleet) {
		fl := learnFleet(t, func(o *Options) {
			o.Learn.Federation = &cluster.FederationOptions{
				SyncEvery:     3,
				Participation: participation,
			}
			o.Faults = partitionScript
		})
		res, err := fl.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		assertLearnConserved(t, res)
		return res, fl
	}

	t.Run("heal-flushes", func(t *testing.T) {
		res, fl := run(t, nil)
		st, ok := fl.FederationStats()
		if !ok {
			t.Fatal("federation disabled")
		}
		if want := 31 + 1; res.Stats.SyncRounds != want || st.Rounds != want {
			t.Errorf("rounds = %d (coordinator %d), want %d (31 scheduled + forced heal round)",
				res.Stats.SyncRounds, st.Rounds, want)
		}
		// 3 partitioned rounds x 2 reporters + 29 full rounds x 4.
		if want := 3*2 + 29*4; st.Reports != want {
			t.Errorf("reports = %d, want %d", st.Reports, want)
		}
		if st.StaleDropped != 0 {
			t.Errorf("%d deltas dropped as stale; the severed side's accumulated delta must merge at heal", st.StaleDropped)
		}
		if st.MergedCells == 0 {
			t.Error("no delta cells merged")
		}
	})

	t.Run("composes-with-dropout", func(t *testing.T) {
		// The -sync-dropout model: node 1 also sits out every round
		// before the partition opens. Both gates must compose — dropout
		// thins the pre-partition rounds, the cut thins the mid-partition
		// ones, and the forced heal round still sees the full roster.
		_, fl := run(t, func(nodeID, interval int) bool {
			return nodeID != 1 || interval >= 10
		})
		st, ok := fl.FederationStats()
		if !ok {
			t.Fatal("federation disabled")
		}
		if st.Rounds != 32 {
			t.Errorf("rounds = %d, want 32", st.Rounds)
		}
		// Rounds 3, 6, 9: dropout excludes node 1 (3 reporters); rounds
		// 12, 15, 18: the cut excludes nodes 2 and 3 (2 reporters); the
		// forced round at 20 and the 25 remaining see all 4.
		if want := 3*3 + 3*2 + 26*4; st.Reports != want {
			t.Errorf("reports = %d, want %d", st.Reports, want)
		}
	})
}
