package clusterdes

// PartitionDomains splits a roster of n nodes into d contiguous,
// non-empty domains, as evenly as possible: the first n%d domains get
// one extra node. It returns the start index of each domain plus a
// trailing n, so domain k owns the node-id range
// [starts[k], starts[k+1]). d is clamped to [1, n] — a caller asking
// for more domains than nodes gets one node per domain, never an empty
// domain; every node lands in exactly one domain.
//
// Contiguity is load-bearing twice over: the active set is always a
// roster prefix, so each domain's active set is a prefix of its own
// slice; and a global node id maps to its domain's local slice by a
// subtraction, so events can carry global ids.
func PartitionDomains(n, d int) []int {
	if n < 1 {
		return nil
	}
	if d < 1 {
		d = 1
	}
	if d > n {
		d = n
	}
	starts := make([]int, d+1)
	base, extra := n/d, n%d
	pos := 0
	for k := 0; k < d; k++ {
		starts[k] = pos
		pos += base
		if k < extra {
			pos++
		}
	}
	starts[d] = n
	return starts
}
