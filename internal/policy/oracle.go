package policy

import (
	"hipster/internal/platform"
	"hipster/internal/workload"
)

// Oracle is an idealised policy with perfect knowledge of the workload
// model: each interval it exhaustively searches the configuration space
// for the least-power configuration whose *deterministic* steady-state
// tail latency meets the QoS target at the just-observed load. It is
// not realisable on real hardware (it assumes the next interval's load
// equals the current one and a perfect latency model); the experiments
// use it as the upper bound on achievable energy savings, against which
// HipsterIn's learned table is judged.
type Oracle struct {
	spec    *platform.Spec
	wl      *workload.Model
	configs []platform.Config
	// Headroom derates each configuration's capacity during the search
	// (0.0 = none). A small margin absorbs load growth during the next
	// interval.
	Headroom float64

	last platform.Config
}

// NewOracle builds the oracle for a workload on a platform.
func NewOracle(spec *platform.Spec, wl *workload.Model, headroom float64) *Oracle {
	return &Oracle{
		spec:     spec,
		wl:       wl,
		configs:  platform.Configs(spec),
		Headroom: headroom,
		last:     platform.Config{NBig: spec.Big.Cores, BigFreq: spec.Big.MaxFreq()},
	}
}

// Name implements Policy.
func (o *Oracle) Name() string { return "oracle" }

// Decide implements Policy.
func (o *Oracle) Decide(obs Observation) platform.Config {
	rps := o.wl.RPSAt(obs.LoadFrac) * (1 + o.Headroom)
	best := o.last
	bestPower := -1.0
	for _, cfg := range o.configs {
		if !o.wl.MeetsQoS(o.spec, cfg, rps) {
			continue
		}
		p := o.steadyPower(cfg, rps)
		if bestPower < 0 || p < bestPower {
			best, bestPower = cfg, p
		}
	}
	if bestPower < 0 {
		// Nothing meets QoS (overload): use the highest-capacity
		// configuration.
		best = o.maxCapacity()
	}
	o.last = best
	return best
}

// Reset implements Policy.
func (o *Oracle) Reset() {
	o.last = platform.Config{NBig: o.spec.Big.Cores, BigFreq: o.spec.Big.MaxFreq()}
}

func (o *Oracle) maxCapacity() platform.Config {
	best := o.configs[0]
	bestCap := -1.0
	for _, cfg := range o.configs {
		if c := o.wl.CapacityRPS(o.spec, cfg); c > bestCap {
			best, bestCap = cfg, c
		}
	}
	return best
}

// steadyPower mirrors the experiments' steady-state power evaluation:
// allocated cores at the workload's utilisation (with floor), unused
// clusters at the lowest DVFS.
func (o *Oracle) steadyPower(cfg platform.Config, rps float64) float64 {
	cfg = cfg.Normalize(o.spec)
	capacity := o.wl.CapacityRPS(o.spec, cfg)
	rho := 0.0
	if capacity > 0 {
		rho = rps / capacity
	}
	if rho > 1 {
		rho = 1
	}
	util := rho
	if util < o.wl.UtilFloor {
		util = o.wl.UtilFloor
	}
	mk := func(n int) []float64 {
		u := make([]float64, n)
		for i := range u {
			u[i] = util
		}
		return u
	}
	load := platform.Load{
		BigFreq:      cfg.BigFreq,
		SmallFreq:    o.spec.Small.MaxFreq(),
		BigUtils:     mk(cfg.NBig),
		SmallUtils:   mk(cfg.NSmall),
		DeliveredIPS: rps * o.wl.DemandInstr,
	}
	return platform.SystemPower(o.spec, load).Total()
}
