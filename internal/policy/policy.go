// Package policy defines the decision-making interface shared by every
// task manager in the repository (static mappings, Octopus-Man,
// Hipster's heuristic mapper, and the full Hipster manager), plus the
// feedback-controlled state-machine ladder that the heuristic policies
// share (§3.3).
package policy

import (
	"fmt"

	"hipster/internal/platform"
	"hipster/internal/rl"
)

// Observation is what the QoS monitor hands the policy at the end of
// each monitoring interval: application-level QoS metrics, the load, the
// power reading, and (for collocated runs) the batch throughput read
// from the performance counters.
type Observation struct {
	// Time is the interval end time in seconds; Interval its length.
	Time     float64
	Interval float64

	// LoadFrac is the measured load during the interval as a fraction
	// of the workload's maximum capacity.
	LoadFrac float64

	// TailLatency is the measured tail latency (seconds) at the
	// workload's QoS percentile; Target is the QoS target.
	TailLatency float64
	Target      float64

	// PowerW is the measured system power.
	PowerW float64

	// Current is the configuration that was in force.
	Current platform.Config

	// HasBatch reports whether batch jobs are collocated.
	HasBatch bool
	// BatchBigIPS / BatchSmallIPS are the per-cluster aggregate batch
	// instruction rates (the BIPS/SIPS of Algorithm 1).
	BatchBigIPS   float64
	BatchSmallIPS float64
	// PerfGarbage flags a corrupted counter reading (Juno erratum).
	PerfGarbage bool
}

// QoSMet reports whether the interval met the target.
func (o Observation) QoSMet() bool { return o.TailLatency <= o.Target }

// Policy decides the configuration for the next interval from the
// current observation.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the configuration to apply for the next interval.
	Decide(obs Observation) platform.Config
	// Reset restores the policy to its initial state.
	Reset()
}

// Phaser is implemented by policies that expose an internal phase
// (Hipster's learning/exploitation) for telemetry.
type Phaser interface {
	Phase() string
}

// RewardReporter is implemented by learning policies that expose the
// reward of their most recent table update, for per-interval telemetry
// (clusterdes attaches the fleet-mean reward to each FleetSample).
// ok is false until the policy has completed at least one
// state-action-reward transition.
type RewardReporter interface {
	LastReward() (lam float64, ok bool)
}

// Episodic is implemented by learning policies whose temporal-
// difference chain must be cut at an episode boundary (e.g. between a
// training run and an evaluation run of a simulation): EndEpisode
// forgets the pending previous state/action so the first decision of
// the next run does not bridge unrelated trajectories, while keeping
// everything learned so far.
type Episodic interface {
	EndEpisode()
}

// TableProvider is implemented by policies that learn a shareable RL
// lookup table (Hipster's hybrid manager). Federation reads the live
// table to extract per-node deltas and overwrites it with the merged
// fleet table at each sync round. The pointer is live, not a copy —
// callers must only touch it while the policy is not deciding (the
// cluster coordinator's serial section).
type TableProvider interface {
	LiveTable() *rl.Table
}

// Static always returns a fixed configuration; the paper's
// "Static (all big cores)" and "Static (all small cores)" baselines.
type Static struct {
	Label  string
	Config platform.Config
}

// NewStaticBig returns the all-big-cores-at-max-DVFS baseline.
func NewStaticBig(spec *platform.Spec) *Static {
	return &Static{
		Label:  "static-big",
		Config: platform.Config{NBig: spec.Big.Cores, BigFreq: spec.Big.MaxFreq()},
	}
}

// NewStaticSmall returns the all-small-cores baseline.
func NewStaticSmall(spec *platform.Spec) *Static {
	return &Static{
		Label:  "static-small",
		Config: platform.Config{NSmall: spec.Small.Cores, BigFreq: spec.Big.MinFreq()},
	}
}

// Name implements Policy.
func (s *Static) Name() string { return s.Label }

// Decide implements Policy.
func (s *Static) Decide(Observation) platform.Config { return s.Config }

// Reset implements Policy.
func (s *Static) Reset() {}

// Ladder is a feedback-controlled state machine over an ordered list of
// configurations (approximately ascending power). Whenever an interval
// ends in the danger zone (tail latency above QoSD of the target) it
// climbs to the next-higher-power state; whenever it ends in the safe
// zone (below QoSS of the target) it descends.
type Ladder struct {
	States []platform.Config
	// QoSD and QoSS define the danger and safe zones as fractions of
	// the target (0 < QoSS < QoSD <= 1).
	QoSD float64
	QoSS float64
	// Cooldown suppresses down-transitions for this many intervals
	// after an up-transition, avoiding immediate re-descent into a
	// state that just violated (the oscillation damping both
	// Octopus-Man and the heuristic mapper deploy; the paper computes
	// the zone thresholds "to avoid oscillations between adjacent
	// states").
	Cooldown int

	idx      int
	startIdx int
	hold     int
}

// NewLadder builds a ladder controller starting at the given index.
func NewLadder(states []platform.Config, qosD, qosS float64, startIdx int) (*Ladder, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("policy: empty ladder")
	}
	if !(0 < qosS && qosS < qosD && qosD <= 1) {
		return nil, fmt.Errorf("policy: invalid zones QoSD=%v QoSS=%v", qosD, qosS)
	}
	if startIdx < 0 || startIdx >= len(states) {
		return nil, fmt.Errorf("policy: start index %d out of range", startIdx)
	}
	cp := make([]platform.Config, len(states))
	copy(cp, states)
	return &Ladder{States: cp, QoSD: qosD, QoSS: qosS, idx: startIdx, startIdx: startIdx}, nil
}

// Index returns the current ladder position.
func (l *Ladder) Index() int { return l.idx }

// SetIndex moves the controller to a specific state (used when an outer
// manager applied a different configuration and the ladder must resume
// from there).
func (l *Ladder) SetIndex(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(l.States) {
		i = len(l.States) - 1
	}
	l.idx = i
}

// Current returns the configuration at the current position.
func (l *Ladder) Current() platform.Config { return l.States[l.idx] }

// Step applies the danger/safe transition rule for one observation and
// returns the configuration for the next interval. After a
// danger-triggered climb, the next Cooldown safe signals are absorbed
// instead of descending.
func (l *Ladder) Step(obs Observation) platform.Config {
	switch {
	case obs.TailLatency > obs.Target*l.QoSD:
		if l.idx < len(l.States)-1 {
			l.idx++
		}
		l.hold = l.Cooldown
	case obs.TailLatency < obs.Target*l.QoSS:
		if l.hold > 0 {
			l.hold--
		} else if l.idx > 0 {
			l.idx--
		}
	}
	return l.States[l.idx]
}

// Reset restores the initial position.
func (l *Ladder) Reset() {
	l.idx = l.startIdx
	l.hold = 0
}

// IndexOf locates a configuration in the ladder, or -1.
func (l *Ladder) IndexOf(c platform.Config) int {
	for i, s := range l.States {
		if s == c {
			return i
		}
	}
	return -1
}
