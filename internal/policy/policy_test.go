package policy

import (
	"testing"

	"hipster/internal/platform"
)

func ladderStates() []platform.Config {
	return []platform.Config{
		{NSmall: 1},
		{NSmall: 2},
		{NSmall: 4},
		{NBig: 2, BigFreq: 1150},
	}
}

func obs(tail, target float64) Observation {
	return Observation{TailLatency: tail, Target: target}
}

func TestLadderClimbsOnDanger(t *testing.T) {
	l, err := NewLadder(ladderStates(), 0.8, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tail beyond the danger zone climbs one state per interval.
	for i := 1; i <= 3; i++ {
		l.Step(obs(0.95, 1))
		if l.Index() != i {
			t.Fatalf("after %d danger steps index = %d", i, l.Index())
		}
	}
	// Clamped at the top.
	l.Step(obs(2.0, 1))
	if l.Index() != 3 {
		t.Fatalf("index should clamp at top, got %d", l.Index())
	}
}

func TestLadderDescendsWhenSafe(t *testing.T) {
	l, _ := NewLadder(ladderStates(), 0.8, 0.5, 3)
	l.Step(obs(0.2, 1))
	if l.Index() != 2 {
		t.Fatalf("safe zone should descend, index = %d", l.Index())
	}
	// Middle band: hold position.
	l.Step(obs(0.65, 1))
	if l.Index() != 2 {
		t.Fatalf("between zones should hold, index = %d", l.Index())
	}
	// Clamped at the bottom.
	l.SetIndex(0)
	l.Step(obs(0.1, 1))
	if l.Index() != 0 {
		t.Fatalf("index should clamp at bottom, got %d", l.Index())
	}
}

func TestLadderCooldownBlocksDescent(t *testing.T) {
	l, _ := NewLadder(ladderStates(), 0.8, 0.5, 1)
	l.Cooldown = 3
	l.Step(obs(0.9, 1)) // climb, arming the cooldown
	if l.Index() != 2 {
		t.Fatal("should have climbed")
	}
	for i := 0; i < 3; i++ {
		l.Step(obs(0.1, 1)) // safe, but held by cooldown
		if l.Index() != 2 {
			t.Fatalf("cooldown violated at safe step %d", i)
		}
	}
	l.Step(obs(0.1, 1)) // cooldown expired
	if l.Index() != 1 {
		t.Fatalf("descent should resume, index = %d", l.Index())
	}
	// Danger transitions are never blocked by cooldown.
	l.Step(obs(0.9, 1))
	if l.Index() != 2 {
		t.Fatal("danger climb must not be blocked")
	}
}

func TestLadderResetAndIndexOf(t *testing.T) {
	l, _ := NewLadder(ladderStates(), 0.8, 0.5, 2)
	l.Step(obs(0.95, 1))
	l.Reset()
	if l.Index() != 2 {
		t.Fatalf("reset index = %d", l.Index())
	}
	if got := l.IndexOf(platform.Config{NSmall: 2}); got != 1 {
		t.Fatalf("IndexOf = %d", got)
	}
	if got := l.IndexOf(platform.Config{NBig: 1, BigFreq: 600}); got != -1 {
		t.Fatalf("missing config IndexOf = %d", got)
	}
	l.SetIndex(99)
	if l.Index() != len(ladderStates())-1 {
		t.Fatal("SetIndex should clamp high")
	}
	l.SetIndex(-5)
	if l.Index() != 0 {
		t.Fatal("SetIndex should clamp low")
	}
}

func TestNewLadderValidation(t *testing.T) {
	if _, err := NewLadder(nil, 0.8, 0.5, 0); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewLadder(ladderStates(), 0.5, 0.8, 0); err == nil {
		t.Error("safe above danger accepted")
	}
	if _, err := NewLadder(ladderStates(), 1.2, 0.5, 0); err == nil {
		t.Error("danger above 1 accepted")
	}
	if _, err := NewLadder(ladderStates(), 0.8, 0.5, 10); err == nil {
		t.Error("out-of-range start accepted")
	}
}

func TestStaticPolicies(t *testing.T) {
	spec := platform.JunoR1()
	big := NewStaticBig(spec)
	if got := big.Decide(Observation{}); got.NBig != 2 || got.BigFreq != 1150 {
		t.Fatalf("static big = %v", got)
	}
	small := NewStaticSmall(spec)
	if got := small.Decide(Observation{}); got.NSmall != 4 || got.NBig != 0 {
		t.Fatalf("static small = %v", got)
	}
	if big.Name() != "static-big" || small.Name() != "static-small" {
		t.Fatal("policy names")
	}
	big.Reset() // must be a no-op
	if got := big.Decide(Observation{TailLatency: 99, Target: 1}); got.NBig != 2 {
		t.Fatal("static policy must ignore observations")
	}
}

func TestObservationQoSMet(t *testing.T) {
	if !(Observation{TailLatency: 0.9, Target: 1}).QoSMet() {
		t.Fatal("below target should be met")
	}
	if (Observation{TailLatency: 1.1, Target: 1}).QoSMet() {
		t.Fatal("above target should violate")
	}
}
