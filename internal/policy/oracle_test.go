package policy

import (
	"testing"

	"hipster/internal/platform"
	"hipster/internal/workload"
)

func TestOracleMeetsQoSAtEveryLoad(t *testing.T) {
	spec := platform.JunoR1()
	wl := workload.Memcached()
	o := NewOracle(spec, wl, 0)
	for frac := 0.05; frac <= 1.0; frac += 0.05 {
		cfg := o.Decide(Observation{LoadFrac: frac})
		if err := cfg.Validate(spec); err != nil {
			t.Fatalf("load %v: invalid config %v", frac, cfg)
		}
		if !wl.MeetsQoS(spec, cfg, wl.RPSAt(frac)) {
			t.Errorf("load %v: oracle chose %v which violates QoS", frac, cfg)
		}
	}
}

func TestOracleIsMonotoneCheapAtTrough(t *testing.T) {
	spec := platform.JunoR1()
	wl := workload.Memcached()
	o := NewOracle(spec, wl, 0)
	low := o.Decide(Observation{LoadFrac: 0.05})
	if low.UsesBig() {
		t.Fatalf("oracle at 5%% load should use small cores, got %v", low)
	}
	high := o.Decide(Observation{LoadFrac: 0.98})
	if !high.UsesBig() {
		t.Fatalf("oracle at 98%% load needs big cores, got %v", high)
	}
}

func TestOracleOverloadPicksMaxCapacity(t *testing.T) {
	spec := platform.JunoR1()
	wl := workload.WebSearch()
	o := NewOracle(spec, wl, 0)
	// Beyond 100% nothing meets QoS; the oracle must still return the
	// highest-capacity configuration rather than stall.
	cfg := o.Decide(Observation{LoadFrac: 1.5})
	best := cfg
	for _, c := range platform.Configs(spec) {
		if wl.CapacityRPS(spec, c) > wl.CapacityRPS(spec, best) {
			best = c
		}
	}
	if cfg != best {
		t.Fatalf("overload config %v, want max-capacity %v", cfg, best)
	}
}

func TestOracleBeatsStaticOnPower(t *testing.T) {
	spec := platform.JunoR1()
	wl := workload.Memcached()
	o := NewOracle(spec, wl, 0)
	static := platform.Config{NBig: 2, BigFreq: 1150}
	cfg := o.Decide(Observation{LoadFrac: 0.3})
	if o.steadyPower(cfg, wl.RPSAt(0.3)) >= o.steadyPower(static, wl.RPSAt(0.3)) {
		t.Fatal("oracle at 30% load should undercut static-big power")
	}
	o.Reset()
	if o.last != static {
		t.Fatal("reset should restore the static-big starting point")
	}
}
