// Package heuristic implements Hipster's heuristic mapper (§3.3): the
// same danger/safe feedback controller as Octopus-Man, but over the full
// heterogeneous configuration space — mixed big+small core mappings and
// DVFS settings — ordered approximately from lowest to highest power as
// characterised by the stress microbenchmark.
//
// Used alone it is the "Hipster's heuristic" policy of Figure 5 and
// Table 3; inside the Hipster manager it drives the learning phase that
// populates the RL lookup table.
package heuristic

import (
	"hipster/internal/platform"
	"hipster/internal/policy"
)

// Params configure the controller.
type Params struct {
	// QoSD / QoSS are the danger and safe thresholds (fractions of the
	// QoS target), empirically computed the same way as Octopus-Man's.
	QoSD float64
	QoSS float64
	// StartAtTop starts from the most powerful configuration.
	StartAtTop bool
	// Cooldown suppresses down-transitions for this many intervals
	// after a danger-triggered climb (oscillation damping).
	Cooldown int
}

// DefaultParams returns the defaults used by the experiments.
func DefaultParams() Params {
	return Params{QoSD: 0.85, QoSS: 0.55, StartAtTop: true, Cooldown: 8}
}

// Mapper is the heuristic policy.
type Mapper struct {
	ladder *policy.Ladder
}

// Ladder returns the full configuration space ordered by modelled
// stress-microbenchmark power, ascending — the §3.3 state ordering.
func Ladder(spec *platform.Spec) []platform.Config {
	return platform.OrderByStressPower(spec, platform.Configs(spec))
}

// PaperLadder returns the exact empirical ordering of Figure 2c, for
// byte-for-byte replication of the paper's state machine on the Juno R1
// configuration space. It falls back to the modelled ordering on
// platforms with a different configuration space.
func PaperLadder(spec *platform.Spec) []platform.Config {
	want := []string{
		"1S-0.65", "2S-0.65", "3S-0.65",
		"2B-0.60", "1B3S-0.60", "4S-0.65", "2B2S-0.60",
		"1B3S-0.90", "2B-0.90", "2B2S-0.90",
		"1B3S-1.15", "2B2S-1.15", "2B-1.15",
	}
	all := platform.Configs(spec)
	byName := make(map[string]platform.Config, len(all))
	for _, c := range all {
		byName[c.String()] = c
	}
	out := make([]platform.Config, 0, len(want))
	for _, n := range want {
		c, ok := byName[n]
		if !ok {
			return Ladder(spec)
		}
		out = append(out, c)
	}
	if len(out) != len(all) {
		return Ladder(spec)
	}
	return out
}

// New builds the heuristic mapper with the modelled ladder order.
func New(spec *platform.Spec, p Params) (*Mapper, error) {
	return NewWithLadder(Ladder(spec), p)
}

// NewWithLadder builds the mapper over an explicit state order.
func NewWithLadder(states []platform.Config, p Params) (*Mapper, error) {
	start := 0
	if p.StartAtTop {
		start = len(states) - 1
	}
	l, err := policy.NewLadder(states, p.QoSD, p.QoSS, start)
	if err != nil {
		return nil, err
	}
	l.Cooldown = p.Cooldown
	return &Mapper{ladder: l}, nil
}

// MustNew is New that panics on error.
func MustNew(spec *platform.Spec, p Params) *Mapper {
	m, err := New(spec, p)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements policy.Policy.
func (m *Mapper) Name() string { return "hipster-heuristic" }

// Decide implements policy.Policy.
func (m *Mapper) Decide(obs policy.Observation) platform.Config {
	return m.ladder.Step(obs)
}

// Reset implements policy.Policy.
func (m *Mapper) Reset() { m.ladder.Reset() }

// States exposes the ladder order.
func (m *Mapper) States() []platform.Config { return m.ladder.States }

// Index exposes the current ladder position.
func (m *Mapper) Index() int { return m.ladder.Index() }

// SetIndex repositions the controller (used by the Hipster manager when
// re-entering the learning phase from an exploitation decision).
func (m *Mapper) SetIndex(i int) { m.ladder.SetIndex(i) }

// IndexOf locates a configuration in the ladder, or -1.
func (m *Mapper) IndexOf(c platform.Config) int { return m.ladder.IndexOf(c) }
