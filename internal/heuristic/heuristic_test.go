package heuristic

import (
	"testing"

	"hipster/internal/platform"
	"hipster/internal/policy"
)

func TestLadderCoversFullConfigSpace(t *testing.T) {
	spec := platform.JunoR1()
	states := Ladder(spec)
	if len(states) != 13 {
		t.Fatalf("heuristic ladder should cover all 13 configurations, got %d", len(states))
	}
	// Ascending stress power (§3.3 ordering).
	prev := -1.0
	for _, s := range states {
		p := platform.StressPower(spec, s).Total
		if p < prev {
			t.Fatalf("ladder not power-ascending at %v", s)
		}
		prev = p
	}
	// Unlike Octopus-Man, the heuristic explores mixed configurations.
	mixed := 0
	for _, s := range states {
		if s.NBig > 0 && s.NSmall > 0 {
			mixed++
		}
	}
	if mixed < 4 {
		t.Fatalf("expected several mixed configurations, got %d", mixed)
	}
}

func TestPaperLadderExactOrder(t *testing.T) {
	spec := platform.JunoR1()
	got := PaperLadder(spec)
	want := []string{
		"1S-0.65", "2S-0.65", "3S-0.65",
		"2B-0.60", "1B3S-0.60", "4S-0.65", "2B2S-0.60",
		"1B3S-0.90", "2B-0.90", "2B2S-0.90",
		"1B3S-1.15", "2B2S-1.15", "2B-1.15",
	}
	if len(got) != len(want) {
		t.Fatalf("paper ladder has %d states", len(got))
	}
	for i, name := range want {
		if got[i].String() != name {
			t.Errorf("position %d: got %v, want %s", i, got[i], name)
		}
	}
}

func TestPaperLadderFallsBackOnForeignPlatform(t *testing.T) {
	spec := platform.JunoR1()
	spec.Big.Cores = 1 // not the paper's configuration space any more
	got := PaperLadder(spec)
	if len(got) == 0 {
		t.Fatal("fallback ladder should not be empty")
	}
	// Must equal the modelled ordering.
	want := Ladder(spec)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fallback should be the modelled ordering, differs at %d", i)
		}
	}
}

func TestMapperDecisions(t *testing.T) {
	spec := platform.JunoR1()
	m := MustNew(spec, Params{QoSD: 0.8, QoSS: 0.5, StartAtTop: true})
	if m.Name() != "hipster-heuristic" {
		t.Fatal("name")
	}
	top := m.Decide(policy.Observation{TailLatency: 0.7, Target: 1})
	if top != m.States()[len(m.States())-1] {
		t.Fatalf("neutral from top = %v", top)
	}
	for i := 0; i < 30; i++ {
		m.Decide(policy.Observation{TailLatency: 0.1, Target: 1})
	}
	if m.Index() != 0 {
		t.Fatalf("sustained safe should reach the bottom, index=%d", m.Index())
	}
	m.SetIndex(5)
	if m.Index() != 5 {
		t.Fatal("SetIndex")
	}
	if got := m.IndexOf(m.States()[5]); got != 5 {
		t.Fatalf("IndexOf = %d", got)
	}
	m.Reset()
	if m.Index() != len(m.States())-1 {
		t.Fatal("reset should restore start")
	}
}

func TestNewWithLadderValidation(t *testing.T) {
	if _, err := NewWithLadder(nil, DefaultParams()); err == nil {
		t.Fatal("empty ladder accepted")
	}
}
