package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the golden file from this run")

// TestGoldenOutput replays the example into a buffer and compares it
// byte-for-byte against the committed golden, so any drift in the
// search trajectory, the winning configuration or the held-out
// numbers is caught in CI. After an intentional change, regenerate
// with:
//
//	go test ./examples/tuning -run TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// The golden pins byte-exact float formatting; Go permits FMA
		// fusion on other architectures, which can shift accumulated
		// sums by a rounded digit. CI (amd64) enforces the golden.
		t.Skipf("golden pinned to amd64 float semantics, running on %s", runtime.GOARCH)
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "output.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file %s regenerated", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output drifted from %s (rerun with -update if intentional)\n--- want ---\n%s--- got ---\n%s",
			golden, want, buf.Bytes())
	}
}
