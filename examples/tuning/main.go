// Tuning: the offline tuner over the learn-enabled cluster DES
// (`experiments.Tuning`). A seeded hill-climb with random restarts
// searches Hipster's RL hyperparameters, the hedge quantile, the
// routing-domain count, the federation sync interval, the autoscale
// target and the mitigation policy itself, scoring every candidate
// across two training days on a weighted tail + QoS + energy
// objective with the untuned configuration's own power draw as a soft
// energy budget. The winning configuration is then graded against the
// default on a held-out day neither ever trained on. The whole loop
// is deterministic — the same invocation reproduces the same winner
// at any worker count — which is what pins this report byte-for-byte.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"hipster/internal/experiments"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintln(w, "offline tuning over the learn-enabled cluster DES: 6-node Web-Search fleet, bursty day")
	fmt.Fprintln(w)

	res, err := experiments.Tuning(experiments.TuningOpts{})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "search: %d configurations evaluated across seeds %v, %d rounds, converged=%v\n",
		len(res.Tune.Evaluations), res.Tune.Seeds, res.Tune.Rounds, res.Tune.Converged)
	fmt.Fprintf(w, "energy budget: %.2f W, the untuned configuration's own training-day draw\n",
		res.Tune.Weights.PowerCapW)
	fmt.Fprintf(w, "train score: default %.4f -> winner %.4f (lower is better)\n",
		res.Tune.DefaultEval.Score, res.Tune.Winner.Score)
	fmt.Fprintln(w)

	fmt.Fprintln(w, "winning configuration:")
	for _, s := range res.Tune.Winner.Settings {
		v := s.Value
		if v == "" {
			v = strconv.FormatFloat(s.Number, 'g', 6, 64)
		}
		fmt.Fprintf(w, "  %-15s %s\n", s.Name, v)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "held-out day (seed %d), never seen during the search:\n", res.HeldOutSeed)
	fmt.Fprintf(w, "%-8s %9s %8s %10s %9s %9s\n",
		"config", "p99 ms", "QoS", "energy J", "mean W", "score")
	for _, r := range []experiments.TuningRow{res.Default, res.Tuned} {
		fmt.Fprintf(w, "%-8s %9.1f %7.1f%% %10.0f %9.2f %9.4f\n",
			r.Config, r.Metrics.P99*1000, r.Metrics.QoSAttainment*100,
			r.Metrics.EnergyJ, r.Metrics.MeanPowerW, r.Score)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "the tuned configuration cuts held-out P99 %.1fx (%.0f ms -> %.0f ms) at higher QoS\n",
		res.Default.Metrics.P99/res.Tuned.Metrics.P99,
		res.Default.Metrics.P99*1000, res.Tuned.Metrics.P99*1000)
	fmt.Fprintf(w, "attainment and %.0f J less energy than the default it was budgeted against\n",
		res.Default.Metrics.EnergyJ-res.Tuned.Metrics.EnergyJ)
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
