// DES learning: close Hipster's RL loop on measured request tails. Two
// identical 6-node Web-Search fleets learn the same bursty day from the
// same seed — one inside the request-level cluster DES, where each
// interval's reward comes from the latencies of the requests the node
// actually served, and one in interval mode, where the reward can only
// come from the analytic tail estimate. Both trained table sets are
// then frozen (exploitation phase) and graded in the DES — the ground
// truth — on a held-out seed. Tables trained on measured tails meet a
// higher QoS at lower energy: burst transients, where queueing built
// during a spike drains across the following intervals, are exactly
// where the analytic estimate and the measured tail disagree.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster/internal/experiments"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	res, err := experiments.DESLearning(experiments.DESLearningOpts{})
	if err != nil {
		return err
	}
	o := res.Opts
	fmt.Fprintf(w, "in-DES learning vs interval-mode learning: %d-node Web-Search fleet, seed %d\n", o.Nodes, o.Seed)
	fmt.Fprintf(w, "train %.0fs on the bursty day (learning phase %.0fs), evaluate %.0fs in the DES on seed %d\n",
		o.TrainSecs, o.LearnSecs, o.EvalSecs, o.Seed+1000)
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-18s %10s %8s %10s %8s %6s\n",
		"trained in", "p99 ms", "QoS", "energy J", "migr", "dvfs")
	for _, r := range []experiments.DESLearningRow{res.DESTrained, res.IntervalTrained} {
		label := "DES (measured)"
		if r.Source == "interval" {
			label = "interval (model)"
		}
		fmt.Fprintf(w, "%-18s %10.2f %7.2f%% %10.1f %8d %6d\n",
			label, r.P99*1000, r.QoSAttainment*100, r.EnergyJ, r.CoreMigrations, r.DVFSChanges)
	}

	fmt.Fprintln(w)
	d, iv := res.DESTrained, res.IntervalTrained
	if d.QoSAttainment >= iv.QoSAttainment && d.EnergyJ <= iv.EnergyJ {
		fmt.Fprintln(w, "tables trained on measured request tails meet a higher QoS at lower energy")
		fmt.Fprintln(w, "than tables trained against the analytic tail estimate — same fleet, same")
		fmt.Fprintln(w, "day, same seed, same hyperparameters; only the reward signal differs")
	} else {
		fmt.Fprintln(w, "warning: DES-trained tables did not dominate the interval-trained tables")
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
