// Quickstart: run HipsterIn on Memcached over two compressed days of
// diurnal load and print the paper's headline metrics (QoS guarantee,
// tardiness, energy, migrations).
package main

import (
	"fmt"
	"log"

	"hipster"
)

func main() {
	spec := hipster.JunoR1()

	mgr, err := hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   mgr,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Day one learns, day two exploits.
	trace, err := sim.Run(2 * 1440)
	if err != nil {
		log.Fatal(err)
	}

	sum := trace.Summarize()
	fmt.Println("HipsterIn on Memcached, two compressed days of diurnal load")
	fmt.Printf("  QoS guarantee : %.1f%% (target: 95th pct <= 10 ms)\n", sum.QoSGuarantee*100)
	fmt.Printf("  QoS tardiness : %.2f (mean over violations)\n", sum.MeanTardiness)
	fmt.Printf("  energy        : %.0f J (mean %.2f W)\n", sum.TotalEnergyJ, sum.MeanPowerW)
	fmt.Printf("  migrations    : %d events\n", sum.MigrationEvents)

	// Compare the exploitation day against the static all-big mapping.
	static, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   hipster.NewStaticBig(spec),
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := static.Run(2 * 1440)
	if err != nil {
		log.Fatal(err)
	}
	saving := trace.EnergyReductionVs(baseline)
	fmt.Printf("  energy saving vs static all-big: %.1f%%\n", saving*100)
}
