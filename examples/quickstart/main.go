// Quickstart: run HipsterIn on Memcached over two compressed days of
// diurnal load and print the paper's headline metrics (QoS guarantee,
// tardiness, energy, migrations).
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	spec := hipster.JunoR1()

	mgr, err := hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42)
	if err != nil {
		return err
	}

	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   mgr,
		Seed:     42,
	})
	if err != nil {
		return err
	}

	// Day one learns, day two exploits.
	trace, err := sim.Run(2 * 1440)
	if err != nil {
		return err
	}

	sum := trace.Summarize()
	fmt.Fprintln(w, "HipsterIn on Memcached, two compressed days of diurnal load")
	fmt.Fprintf(w, "  QoS guarantee : %.1f%% (target: 95th pct <= 10 ms)\n", sum.QoSGuarantee*100)
	fmt.Fprintf(w, "  QoS tardiness : %.2f (mean over violations)\n", sum.MeanTardiness)
	fmt.Fprintf(w, "  energy        : %.0f J (mean %.2f W)\n", sum.TotalEnergyJ, sum.MeanPowerW)
	fmt.Fprintf(w, "  migrations    : %d events\n", sum.MigrationEvents)

	// Compare the exploitation day against the static all-big mapping.
	static, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   hipster.NewStaticBig(spec),
		Seed:     42,
	})
	if err != nil {
		return err
	}
	baseline, err := static.Run(2 * 1440)
	if err != nil {
		return err
	}
	saving := trace.EnergyReductionVs(baseline)
	fmt.Fprintf(w, "  energy saving vs static all-big: %.1f%%\n", saving*100)
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
