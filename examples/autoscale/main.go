// Autoscale example: the same bursty day served twice on one seed —
// first by a static 8-node fleet that stays on all day, then by an
// elastic fleet whose active node set follows the load (2..8 nodes
// under the target-utilization policy). Federation rides along: every
// node that joins mid-burst is warm-started from the fleet's merged RL
// table instead of learning from zero, and every node that leaves
// flushes its learning back first. The elastic fleet serves the trace
// at the same QoS-attainment bar while consuming roughly a third fewer
// node-intervals, and about a sixth less energy.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster"
)

const (
	rosterNodes = 8
	minNodes    = 2
	seed        = 42
	day         = 1440.0
)

func runFleet(elastic bool) (*hipster.Cluster, hipster.ClusterResult, error) {
	spec := hipster.JunoR1()
	params := hipster.DefaultParams()
	params.LearnSecs = 120
	defs, err := hipster.UniformClusterNodes(rosterNodes, spec, hipster.Memcached(),
		func(nodeID int) (hipster.Policy, error) {
			return hipster.NewHipsterIn(spec, params, seed+int64(nodeID))
		})
	if err != nil {
		return nil, hipster.ClusterResult{}, err
	}
	opts := hipster.ClusterOptions{
		Nodes: defs,
		// A 30% base load with a burst to 80% of roster capacity every
		// three minutes — the bursty regime where a fixed fleet wastes
		// most of its node-intervals idling between spikes.
		Pattern:    hipster.Spike{Base: 0.3, Peak: 0.8, EverySecs: 180, SpikeSecs: 45, Horizon: day},
		Seed:       seed,
		Federation: &hipster.FederationOptions{SyncEvery: 5},
	}
	if elastic {
		opts.Autoscale = &hipster.AutoscaleOptions{
			Policy:             hipster.NewTargetUtilizationPolicy(0.7),
			MinNodes:           minNodes,
			CooldownIntervals:  3,
			DownAfterIntervals: 2,
		}
	}
	cl, err := hipster.NewCluster(opts)
	if err != nil {
		return nil, hipster.ClusterResult{}, err
	}
	res, err := cl.Run(day)
	return cl, res, err
}

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintf(w, "elastic vs static fleet: %d-node roster, bursty day (0.3 base, 0.8 burst), seed %d\n\n", rosterNodes, seed)

	report := func(name string, cl *hipster.Cluster, res hipster.ClusterResult) int {
		sum := res.Summarize()
		fmt.Fprintf(w, "%-8s QoS attainment %5.2f%%  node-intervals %5d  energy %6.0f J\n",
			name, sum.QoSAttainment*100, sum.NodeIntervals, sum.TotalEnergyJ)
		if st, ok := cl.AutoscaleStats(); ok {
			fmt.Fprintf(w, "         %d-%d nodes active, %d up / %d down events, %d warm starts, %d departure flushes\n",
				st.MinActive, st.PeakActive, st.Ups, st.Downs, st.WarmStarts, st.Flushes)
		}
		return sum.NodeIntervals
	}

	staticCl, staticRes, err := runFleet(false)
	if err != nil {
		return err
	}
	ni := report("static", staticCl, staticRes)

	elasticCl, elasticRes, err := runFleet(true)
	if err != nil {
		return err
	}
	nie := report("elastic", elasticCl, elasticRes)

	if nie < ni {
		fmt.Fprintf(w, "\nelastic fleet served the same day with %.1f%% fewer node-intervals\n",
			100*(1-float64(nie)/float64(ni)))
	} else {
		fmt.Fprintln(w, "\nwarning: elasticity saved nothing on this configuration")
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
