// Policy comparison: reproduce the Table 3 experiment through the
// public API — five task-management policies on Memcached and
// Web-Search over the diurnal load, scored on QoS guarantee, tardiness
// and energy relative to the static all-big mapping.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster"
)

func buildPolicy(name string, spec *hipster.Spec, seed int64) (hipster.Policy, error) {
	switch name {
	case "static-big":
		return hipster.NewStaticBig(spec), nil
	case "static-small":
		return hipster.NewStaticSmall(spec), nil
	case "octopus-man":
		return hipster.NewOctopusMan(spec)
	case "hipster-heuristic":
		return hipster.NewHeuristicMapper(spec)
	default:
		return hipster.NewHipsterIn(spec, hipster.DefaultParams(), seed)
	}
}

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	spec := hipster.JunoR1()
	policies := []string{
		"static-big", "static-small", "hipster-heuristic", "octopus-man", "hipster-in",
	}
	const day = 1440.0

	for _, wl := range []*hipster.Workload{hipster.Memcached(), hipster.WebSearch()} {
		fmt.Fprintf(w, "\n=== %s (target: p%.0f <= %v s) ===\n",
			wl.Name, wl.QoSPercentile*100, wl.TargetLatency)
		fmt.Fprintf(w, "%-18s %8s %10s %10s %11s\n",
			"policy", "QoS", "tardiness", "energy J", "migrations")

		var baseline float64
		for _, name := range policies {
			pol, err := buildPolicy(name, spec, 42)
			if err != nil {
				return err
			}
			sim, err := hipster.NewSimulation(hipster.SimOptions{
				Spec:     spec,
				Workload: wl,
				Pattern:  hipster.DefaultDiurnal(),
				Policy:   pol,
				Seed:     42,
			})
			if err != nil {
				return err
			}
			// Two days; score the second so Hipster is in its
			// exploitation phase (the paper's methodology).
			full, err := sim.Run(2 * day)
			if err != nil {
				return err
			}
			day2 := full.Slice(day, 2*day+1)
			sum := day2.Summarize()
			energy := sum.TotalEnergyJ - full.Slice(0, day).Summarize().TotalEnergyJ
			if name == "static-big" {
				baseline = energy
			}
			fmt.Fprintf(w, "%-18s %7.1f%% %10.2f %10.0f %11d",
				name, sum.QoSGuarantee*100, sum.MeanTardiness, energy, sum.MigrationEvents)
			if baseline > 0 && name != "static-big" {
				fmt.Fprintf(w, "   (%.1f%% energy saved)", (1-energy/baseline)*100)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
