// Retrystorm: the classic metastable failure of naive retries, and the
// circuit-breaker escape from it, reproduced on one seed under the
// request-level cluster DES. The same 8-node Web-Search fleet at 50%
// load is hit by one 30-second overload spike, three times:
//
//   - no-retry: per-attempt deadlines only. Timed-out requests are
//     dropped, and the backlog drains as soon as the spike ends.
//   - naive-retry: every timeout re-issues the request with a large
//     budget and near-zero backoff. The spike multiplies each arrival
//     into many attempts; after the spike the retry traffic alone
//     exceeds capacity, so the fleet never drains — the metastable
//     state, with a completed-request P99 far worse than simply not
//     retrying.
//   - breaker: the same retries behind a per-node circuit breaker. The
//     windowed failure rate trips the breakers, retries fail fast
//     instead of occupying queues, the storm starves, and the fleet
//     recovers to the baseline's healthy state.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster/internal/experiments"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintln(w, "retry storm under the cluster DES: 8-node Web-Search fleet, 50% load, 30 s spike at 1.6x capacity, seed 42")
	fmt.Fprintln(w)

	rows, err := experiments.RetryStorm(experiments.RetryStormOpts{})
	if err != nil {
		return err
	}
	byName := map[string]experiments.RetryStormRow{}
	fmt.Fprintf(w, "%-12s %9s %9s %10s %8s %9s %9s %7s %10s\n",
		"variant", "p50 ms", "p99 ms", "completed", "dropped", "timed out", "retries", "opens", "recovered")
	for _, r := range rows {
		byName[r.Variant] = r
		recovered := "never"
		if r.RecoveredInterval >= 0 {
			recovered = fmt.Sprintf("ivl %d", r.RecoveredInterval)
		}
		fmt.Fprintf(w, "%-12s %9.1f %9.1f %10d %8d %9d %9d %7d %10s\n",
			r.Variant, r.P50*1000, r.P99*1000, r.Completed, r.Dropped, r.TimedOut,
			r.Retries, r.BreakerOpens, recovered)
	}

	fmt.Fprintln(w)
	base, naive, breaker := byName["no-retry"], byName["naive-retry"], byName["breaker"]
	fmt.Fprintf(w, "naive retries left P99 %.1fx worse than not retrying at all and never drained the backlog\n",
		naive.P99/base.P99)
	fmt.Fprintf(w, "the breaker opened %d times, shed the storm, and drained at interval %d — the no-retry baseline drained at %d\n",
		breaker.BreakerOpens, breaker.RecoveredInterval, base.RecoveredInterval)
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
