// Sharding: a 256-node Web-Search fleet served by the request-level
// cluster DES, first through the classic serial event loop, then
// sharded into 1, 2, 4 and 8 routing domains. Each domain runs its own
// event loop between interval boundaries; work stolen across a domain
// boundary is reconciled in the coordinator's serial section, so the
// run stays a pure function of (seed, domain count) no matter how many
// workers step the domains. The one-domain run reproduces the serial
// loop bit for bit — the guarantee the fleettest harness enforces on
// every feature combination, demonstrated here on the largest fleet in
// the repo.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster/internal/experiments"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintln(w, "routing-domain sharding: 256-node Web-Search fleet, 60% load, work stealing, seed 42")
	fmt.Fprintln(w)

	res, err := experiments.Sharding(experiments.ShardingOpts{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %9s %10s %10s %9s %8s %12s\n",
		"domains", "completed", "dropped", "p50 ms", "p99 ms", "QoS", "steals", "cross-domain")
	for _, r := range res.Rows {
		label := "serial"
		if r.Domains > 0 {
			label = fmt.Sprintf("%d", r.Domains)
		}
		fmt.Fprintf(w, "%-8s %10d %9d %10.2f %10.2f %8.2f%% %8d %12d\n",
			label, r.Completed, r.Dropped, r.P50*1000, r.P99*1000,
			r.QoSAttainment*100, r.Steals, r.CrossDomainSteals)
	}

	fmt.Fprintln(w)
	if res.SerialIdentical {
		fmt.Fprintln(w, "the 1-domain sharded run reproduced the serial loop exactly: same completions,")
		fmt.Fprintln(w, "same drops, same latency quantiles to the last bit, same steal count")
	} else {
		fmt.Fprintln(w, "warning: the 1-domain sharded run diverged from the serial loop")
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
