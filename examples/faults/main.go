// Faults: fault injection for the fleet under the request-level
// cluster DES, on one seed (42). Two demonstrations
// (`experiments.FaultTolerance`):
//
//   - The detector race. The same 8-node Web-Search fleet at 70% load
//     has node 5 scripted to serve 3x slower for two minutes, twice:
//     once under the reactive quantile hedge, once under the
//     predictive detector (per-node EWMA of the backlog drain estimate
//     against the fleet median). The reactive signal is built from
//     completed-request sojourns, so it trails the onset by a couple
//     of intervals; the drain estimate grows the moment service slows.
//     The predictive variant flags first, migrates the suspect's
//     queue, hedges its requests early — and ends with a far lower
//     fleet P99.
//   - The fault soup. The same fleet with every fault class firing at
//     once — random crashes (queued and in-flight work destroyed),
//     network partitions, spot revocations with a drain window — on a
//     bare fleet, over a drained horizon: every admitted request is
//     accounted for exactly once as completed, dropped, timed out or
//     lost.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster/internal/experiments"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintln(w, "fault injection under the cluster DES: 8-node Web-Search fleet, 70% load, seed 42")
	fmt.Fprintln(w)

	res, err := experiments.FaultTolerance(experiments.FaultToleranceOpts{})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "detector race: node 5 serves 3x slower from interval 60 for 120 s")
	fmt.Fprintf(w, "%-12s %9s %9s %10s %8s %9s %8s %11s\n",
		"mitigation", "p50 ms", "p99 ms", "completed", "hedges", "pred mig", "flagged", "tail signal")
	byName := map[string]experiments.DetectorRaceRow{}
	for _, r := range res.Race {
		byName[r.Mitigation] = r
		flagged := "-"
		if r.PredictInterval >= 0 {
			flagged = fmt.Sprintf("ivl %d", r.PredictInterval)
		}
		fmt.Fprintf(w, "%-12s %9.1f %9.1f %10d %8d %9d %8s %11s\n",
			r.Mitigation, r.P50*1000, r.P99*1000, r.Completed, r.Hedges,
			r.PredMigrations, flagged, fmt.Sprintf("ivl %d", r.StragglerInterval))
	}
	reactive, predictive := byName["hedged"], byName["predictive"]
	fmt.Fprintln(w)
	fmt.Fprintf(w, "the predictive detector flagged the degraded node at interval %d, %d intervals before\n",
		predictive.PredictInterval, reactive.StragglerInterval-predictive.PredictInterval)
	fmt.Fprintf(w, "the reactive tail signal observed it, and cut fleet P99 %.1fx (%.0f ms -> %.0f ms)\n",
		reactive.P99/predictive.P99, reactive.P99*1000, predictive.P99*1000)

	fmt.Fprintln(w)
	s := res.Soup
	fmt.Fprintln(w, "fault soup: crashes + partitions + spot revocations on the bare fleet, drained horizon")
	fmt.Fprintf(w, "%d crashes, %d spot revocations (%d queue migrations), %d partitions\n",
		s.Crashes, s.Revocations, s.Migrated, s.Partitions)
	fmt.Fprintf(w, "ledger: %d admitted = %d completed + %d dropped + %d timed out + %d lost\n",
		s.Requests, s.Completed, s.Dropped, s.TimedOut, s.Lost)
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
