// Colocation: HipsterCo shares the machine between Web-Search and a
// mix of SPEC CPU 2006 batch programs (the Figure 11 scenario),
// maximising batch throughput while protecting the search QoS, and is
// compared against the static partitioning (search on big cores, batch
// on small cores).
package main

import (
	"fmt"
	"log"

	"hipster"
)

func run(label string, pol hipster.Policy, progs []hipster.BatchProgram) *hipster.Trace {
	spec := hipster.JunoR1()
	runner, err := hipster.NewBatchRunner(progs)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.WebSearch(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   pol,
		Batch:    runner,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	full, err := sim.Run(2 * 1440)
	if err != nil {
		log.Fatal(err)
	}
	day2 := full.Slice(1440, 2*1440+1)
	sum := day2.Summarize()
	fmt.Printf("%-12s QoS %5.1f%%  batch %6.2f GIPS mean  energy(total run) %6.0f J  migrations %d\n",
		label, sum.QoSGuarantee*100, sum.MeanBatchIPS/1e9, full.TotalEnergyJ(), sum.MigrationEvents)
	return day2
}

func main() {
	spec := hipster.JunoR1()

	// A mixed batch: one compute-bound, one memory-bound program.
	calculix, _ := hipster.BatchProgramByName("calculix")
	lbm, _ := hipster.BatchProgramByName("lbm")
	mix := []hipster.BatchProgram{calculix, lbm}

	fmt.Println("Web-Search collocated with calculix+lbm (day 2 of 2, diurnal load)")

	static := run("static", hipster.NewStaticBig(spec), mix)

	om, err := hipster.NewOctopusMan(spec)
	if err != nil {
		log.Fatal(err)
	}
	run("octopus-man", om, mix)

	hc, err := hipster.NewHipsterCo(spec, hipster.DefaultParams(), 42)
	if err != nil {
		log.Fatal(err)
	}
	hipsterTrace := run("hipster-co", hc, mix)

	if s := static.Summarize(); s.MeanBatchIPS > 0 {
		h := hipsterTrace.Summarize()
		fmt.Printf("\nHipsterCo batch throughput vs static partitioning: %.2fx\n",
			h.MeanBatchIPS/s.MeanBatchIPS)
	}
}
