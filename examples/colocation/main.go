// Colocation: HipsterCo shares the machine between Web-Search and a
// mix of SPEC CPU 2006 batch programs (the Figure 11 scenario),
// maximising batch throughput while protecting the search QoS, and is
// compared against the static partitioning (search on big cores, batch
// on small cores).
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster"
)

func runPolicy(w io.Writer, label string, pol hipster.Policy, progs []hipster.BatchProgram) (*hipster.Trace, error) {
	spec := hipster.JunoR1()
	runner, err := hipster.NewBatchRunner(progs)
	if err != nil {
		return nil, err
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.WebSearch(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   pol,
		Batch:    runner,
		Seed:     42,
	})
	if err != nil {
		return nil, err
	}
	full, err := sim.Run(2 * 1440)
	if err != nil {
		return nil, err
	}
	day2 := full.Slice(1440, 2*1440+1)
	sum := day2.Summarize()
	fmt.Fprintf(w, "%-12s QoS %5.1f%%  batch %6.2f GIPS mean  energy(total run) %6.0f J  migrations %d\n",
		label, sum.QoSGuarantee*100, sum.MeanBatchIPS/1e9, full.TotalEnergyJ(), sum.MigrationEvents)
	return day2, nil
}

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	spec := hipster.JunoR1()

	// A mixed batch: one compute-bound, one memory-bound program.
	calculix, err := hipster.BatchProgramByName("calculix")
	if err != nil {
		return err
	}
	lbm, err := hipster.BatchProgramByName("lbm")
	if err != nil {
		return err
	}
	mix := []hipster.BatchProgram{calculix, lbm}

	fmt.Fprintln(w, "Web-Search collocated with calculix+lbm (day 2 of 2, diurnal load)")

	static, err := runPolicy(w, "static", hipster.NewStaticBig(spec), mix)
	if err != nil {
		return err
	}

	om, err := hipster.NewOctopusMan(spec)
	if err != nil {
		return err
	}
	if _, err := runPolicy(w, "octopus-man", om, mix); err != nil {
		return err
	}

	hc, err := hipster.NewHipsterCo(spec, hipster.DefaultParams(), 42)
	if err != nil {
		return err
	}
	hipsterTrace, err := runPolicy(w, "hipster-co", hc, mix)
	if err != nil {
		return err
	}

	if s := static.Summarize(); s.MeanBatchIPS > 0 {
		h := hipsterTrace.Summarize()
		fmt.Fprintf(w, "\nHipsterCo batch throughput vs static partitioning: %.2fx\n",
			h.MeanBatchIPS/s.MeanBatchIPS)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
