// Cluster example: a heterogeneous 16-node fleet — twelve Memcached
// nodes and four Web-Search nodes, each managed by its own HipsterIn
// instance — stepped in parallel under one datacenter-level diurnal
// load. The three front-end splitters are compared on fleet QoS
// attainment, energy, and straggler counts; results are bit-identical
// for any worker count.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster"
)

func buildFleet(spec *hipster.Spec, seed int64) ([]hipster.ClusterNode, error) {
	nodes := make([]hipster.ClusterNode, 0, 16)
	for i := 0; i < 16; i++ {
		wl := hipster.Memcached()
		if i%4 == 3 {
			wl = hipster.WebSearch()
		}
		mgr, err := hipster.NewHipsterIn(spec, hipster.DefaultParams(), seed+int64(i))
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, hipster.ClusterNode{Spec: spec, Workload: wl, Policy: mgr})
	}
	return nodes, nil
}

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract. (The worker count is deliberately
// absent from the output: results do not depend on it.)
func run(w io.Writer) error {
	spec := hipster.JunoR1()
	const seed = 42
	const day = 1440.0

	splitters := []hipster.LoadSplitter{
		hipster.NewRoundRobinSplitter(),
		hipster.NewCapacitySplitter(),
		hipster.NewLeastLoadedSplitter(),
	}

	fmt.Fprintln(w, "16-node fleet (12x memcached, 4x websearch), diurnal day")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %8s %12s %12s %8s\n",
		"splitter", "QoS", "energy J", "stragglers", "peak")

	for _, sp := range splitters {
		nodes, err := buildFleet(spec, seed)
		if err != nil {
			return err
		}
		cl, err := hipster.NewCluster(hipster.ClusterOptions{
			Nodes:    nodes,
			Pattern:  hipster.DefaultDiurnal(),
			Splitter: sp,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		res, err := cl.Run(day)
		if err != nil {
			return err
		}
		sum := res.Summarize()
		fmt.Fprintf(w, "%-22s %7.1f%% %12.0f %12d %8d\n",
			sp.Name(), sum.QoSAttainment*100, sum.TotalEnergyJ,
			sum.TotalStragglers, sum.PeakStragglers)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
