// Federation example: the same 4-node Hipster fleet run twice on one
// seed — first as four independent learners, then with federated table
// sharing — under a front-end whose routing weights rotate over the
// day, so each node starts by learning a different slice of the load
// range. The federated fleet merges its tables every few intervals
// (visit-weighted), so every node exploits the whole fleet's
// experience and reaches the QoS-attainment target in fewer intervals
// than the independent learners, which each fall back to the heuristic
// whenever they enter a load bucket they never visited.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"hipster"
)

const (
	nodes     = 4
	seed      = 42
	day       = 1440.0
	learnSecs = 120 // short learning phase: exploitation starts undertrained
	threshold = 0.95
	window    = 40
)

// phasedSplitter phase-shifts each node's routing weight by its fleet
// position and rotates the weights over the day: during the short
// learning phase every node explores a different load band, and later
// serves bands its peers learned first — the regime where sharing
// tables pays.
type phasedSplitter struct{}

func (phasedSplitter) Name() string { return "phased-weights" }

func (phasedSplitter) Split(ctx hipster.SplitContext) []float64 {
	out := make([]float64, len(ctx.Nodes))
	var total float64
	for i, n := range ctx.Nodes {
		phase := ctx.T/day + float64(i)/float64(len(ctx.Nodes))
		w := (1 + 0.6*math.Sin(2*math.Pi*phase)) * n.CapacityRPS
		out[i] = w
		total += w
	}
	for i := range out {
		out[i] = ctx.TotalRPS * out[i] / total
	}
	return out
}

func runFleet(fed *hipster.FederationOptions) (*hipster.Cluster, hipster.ClusterResult, error) {
	spec := hipster.JunoR1()
	params := hipster.DefaultParams()
	params.LearnSecs = learnSecs
	defs, err := hipster.UniformClusterNodes(nodes, spec, hipster.Memcached(),
		func(nodeID int) (hipster.Policy, error) {
			return hipster.NewHipsterIn(spec, params, seed+int64(nodeID))
		})
	if err != nil {
		return nil, hipster.ClusterResult{}, err
	}
	cl, err := hipster.NewCluster(hipster.ClusterOptions{
		Nodes: defs,
		// Peak at 65% of fleet capacity: with the ±60% weight skew,
		// per-node load approaches but does not exceed capacity, so
		// violations reflect management quality, not raw overload.
		Pattern:    hipster.Diurnal{PeriodSecs: day, Min: 0.05, Max: 0.65, StartPhase: 0.25, Days: 1},
		Splitter:   phasedSplitter{},
		Seed:       seed,
		Federation: fed,
	})
	if err != nil {
		return nil, hipster.ClusterResult{}, err
	}
	res, err := cl.Run(day)
	return cl, res, err
}

// convergedAt returns the 1-based interval at which the trailing-window
// fleet QoS attainment first reaches the threshold and holds it for the
// rest of the run, or -1.
func convergedAt(ft *hipster.FleetTrace) int {
	n := ft.Len()
	met, cnt := 0, 0
	ok := make([]bool, n)
	for i := 0; i < n; i++ {
		met += ft.Samples[i].QoSMet
		cnt += ft.Samples[i].Nodes
		if i >= window {
			met -= ft.Samples[i-window].QoSMet
			cnt -= ft.Samples[i-window].Nodes
		}
		if i >= window-1 {
			ok[i] = cnt > 0 && float64(met)/float64(cnt) >= threshold
		}
	}
	last := n
	for i := n - 1; i >= window-1 && ok[i]; i-- {
		last = i
	}
	if last == n {
		return -1
	}
	return last + 1
}

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintf(w, "federated RL table sharing: %d HipsterIn nodes, %.0f s day, learn %d s, target %.0f%% attainment over %d intervals\n\n",
		nodes, day, learnSecs, threshold*100, window)

	_, indep, err := runFleet(nil)
	if err != nil {
		return err
	}
	fedCl, fed, err := runFleet(&hipster.FederationOptions{
		SyncEvery: 5,
		Merge:     hipster.MergeVisitWeighted,
	})
	if err != nil {
		return err
	}

	report := func(name string, res hipster.ClusterResult) int {
		conv := convergedAt(res.Fleet)
		sum := res.Summarize()
		at := "never"
		if conv >= 0 {
			at = fmt.Sprintf("interval %d", conv)
		}
		fmt.Fprintf(w, "%-12s converged %-13s attainment %5.2f%%  energy %6.0f J\n",
			name, at, sum.QoSAttainment*100, sum.TotalEnergyJ)
		return conv
	}
	ci := report("independent", indep)
	cf := report("federated", fed)

	if st, ok := fedCl.FederationStats(); ok {
		fmt.Fprintf(w, "\nfederation: %d sync rounds, %d reports, %d cells merged (%d table updates pooled)\n",
			st.Rounds, st.Reports, st.MergedCells, st.MergedVisits)
	}
	switch {
	case cf >= 0 && (ci < 0 || cf < ci):
		gain := "the independent fleet never got there"
		if ci >= 0 {
			gain = fmt.Sprintf("%d intervals sooner", ci-cf)
		}
		fmt.Fprintf(w, "\nfederated learners reached the QoS target %s\n", gain)
	default:
		fmt.Fprintln(w, "\nwarning: federation did not converge faster on this configuration")
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
