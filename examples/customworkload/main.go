// Custom workload: define a latency-critical application that is not in
// the paper — a key-value store with a very tight 2 ms p99 target — and
// a custom load trace, then let HipsterIn manage it on the Juno R1
// model. Demonstrates that the library is not hard-wired to the two
// paper workloads.
package main

import (
	"fmt"
	"log"

	"hipster"
)

func main() {
	spec := hipster.JunoR1()

	// A tighter, smaller key-value service: p99 <= 2 ms at up to
	// 24k requests/second. Big cores matter more for it (lower small
	// affinity), and the tight target shrinks the viable envelope.
	kv := &hipster.Workload{
		Name:          "kvstore-p99",
		QoSPercentile: 0.99,
		TargetLatency: 0.002,
		MaxLoadRPS:    24000,
		DemandInstr:   165e3,
		DemandCV:      0.9,
		Affinity: map[hipster.CoreKind]float64{
			hipster.Big:   1.0,
			hipster.Small: 0.70,
		},
		MigPenaltySecsPerCore: 0.0004,
		DVFSPenaltySecs:       0.00005,
		UtilFloor:             0.08,
		NoiseSigma:            0.05,
		MemIntensity:          0.5,
		CrossClusterPenalty:   1.04,
		TailCapFactor:         4,
		BacklogCapSecs:        0.05,
	}
	if err := kv.Validate(); err != nil {
		log.Fatal(err)
	}

	// A recorded load trace replayed at 60-second resolution: overnight
	// batch-ingest bump, quiet morning, steep evening peak.
	samples := []float64{
		0.35, 0.40, 0.30, 0.15, 0.10, 0.08, 0.10, 0.18,
		0.30, 0.42, 0.50, 0.55, 0.52, 0.50, 0.55, 0.62,
		0.70, 0.85, 0.95, 0.90, 0.75, 0.60, 0.45, 0.38,
	}
	pattern, err := hipster.NewTracePattern(60, samples)
	if err != nil {
		log.Fatal(err)
	}

	mgr, err := hipster.NewHipsterIn(spec, hipster.DefaultParams(), 7)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: kv,
		Pattern:  pattern,
		Policy:   mgr,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Run(pattern.Duration())
	if err != nil {
		log.Fatal(err)
	}

	sum := run.Summarize()
	fmt.Printf("custom %s under a replayed trace (%d intervals)\n", kv.Name, sum.Samples)
	fmt.Printf("  QoS guarantee: %.1f%%\n", sum.QoSGuarantee*100)
	fmt.Printf("  mean power   : %.2f W\n", sum.MeanPowerW)
	fmt.Printf("  migrations   : %d\n", sum.MigrationEvents)

	// Show the learned table coverage: how many load buckets were
	// visited during this short run.
	visited := 0
	table := mgr.Table()
	for s := 0; s < table.NumStates(); s++ {
		if table.StateVisits(s) > 0 {
			visited++
		}
	}
	fmt.Printf("  lookup table : %d/%d load buckets visited\n", visited, table.NumStates())
}
