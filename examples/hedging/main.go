// Hedging: the same Web-Search fleet, load and seed served three times
// under the request-level cluster DES — once with no straggler
// mitigation, once with hedged requests (re-issue a request to a second
// node after the p95 of recently observed latencies, first response
// wins), once with cross-node work stealing (an idle node pulls the
// oldest request from the deepest queue). The interval-granularity
// cluster can only report stragglers; at request granularity the
// mitigations act on them, and both cut the fleet's end-to-end P99
// substantially on the identical request stream.
//
// The second half races the two autoscale signals on a bursty day with
// node warm-up: the queue-depth policy sees the queue the interval it
// builds and wakes a node several intervals before the tail-violation
// signal — which matters precisely because a woken node warms up for
// k intervals before it helps.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"hipster/internal/experiments"
)

// run executes the example and writes the report; the golden-file test
// replays it against testdata/output.golden, so the output format is
// part of the example's contract.
func run(w io.Writer) error {
	fmt.Fprintln(w, "straggler mitigation under the cluster DES: 8-node Web-Search fleet, 60% load, seed 42")
	fmt.Fprintln(w)

	rows, err := experiments.HedgingTail(experiments.ClusterDESOpts{})
	if err != nil {
		return err
	}
	var baseP99 float64
	fmt.Fprintf(w, "%-14s %10s %10s %9s %11s %9s\n", "mitigation", "p50 ms", "p99 ms", "QoS", "stragglers", "activity")
	for _, r := range rows {
		activity := "-"
		switch {
		case r.Hedges > 0:
			activity = fmt.Sprintf("%d hedges (%d won)", r.Hedges, r.HedgeWins)
		case r.Steals > 0:
			activity = fmt.Sprintf("%d steals", r.Steals)
		}
		fmt.Fprintf(w, "%-14s %10.2f %10.2f %8.2f%% %11d %9s\n",
			r.Mitigation, r.P50*1000, r.P99*1000, r.QoSAttainment*100, r.Stragglers, activity)
		if r.Mitigation == "none" {
			baseP99 = r.P99
		}
	}
	for _, r := range rows {
		if r.Mitigation != "none" && baseP99 > 0 {
			fmt.Fprintf(w, "%s cut fleet P99 by %.1f%% on the same request stream\n",
				r.Mitigation, 100*(1-r.P99/baseP99))
		}
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "autoscale signal race: bursty day, min 2 of 8 nodes, 3-interval warm-up, same seed")
	res, err := experiments.WarmupSignal(experiments.WarmupSignalOpts{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tail-violation signal : first scale-up at interval %3d, QoS %5.2f%%, p99 %6.0f ms, %d node-intervals\n",
		res.TailFirstScaleUp, res.TailQoS*100, res.TailP99*1000, res.TailNodeIntervals)
	fmt.Fprintf(w, "queue-depth signal    : first scale-up at interval %3d, QoS %5.2f%%, p99 %6.0f ms, %d node-intervals\n",
		res.QueueFirstScaleUp, res.QueueQoS*100, res.QueueP99*1000, res.QueueNodeIntervals)
	// FirstScaleUp is -1 when a signal never fired; queue-depth leads
	// outright in that case.
	switch {
	case res.QueueFirstScaleUp >= 0 && res.TailFirstScaleUp < 0:
		fmt.Fprintln(w, "\nthe queue-depth signal woke a node while the tail signal never fired at all")
	case res.QueueFirstScaleUp >= 0 && res.QueueFirstScaleUp < res.TailFirstScaleUp:
		fmt.Fprintf(w, "\nthe queue-depth signal woke the first extra node %d intervals before the tail crossed the target\n",
			res.TailFirstScaleUp-res.QueueFirstScaleUp)
	default:
		fmt.Fprintln(w, "\nwarning: the queue-depth signal did not lead on this configuration")
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
