package hipster_test

import (
	"testing"

	"hipster"
)

func TestQuickstartFlow(t *testing.T) {
	spec := hipster.JunoR1()
	mgr, err := hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   mgr,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() != 300 {
		t.Fatalf("samples = %d", trace.Len())
	}
	if q := trace.QoSGuarantee(); q < 0.5 {
		t.Fatalf("QoS guarantee %v implausible", q)
	}
	if trace.TotalEnergyJ() <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestFacadeConstructors(t *testing.T) {
	spec := hipster.JunoR1()
	if got := len(hipster.Configs(spec)); got != 13 {
		t.Fatalf("configs = %d", got)
	}
	if _, err := hipster.NewHipsterCo(spec, hipster.DefaultParams(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hipster.NewOctopusMan(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := hipster.NewHeuristicMapper(spec); err != nil {
		t.Fatal(err)
	}
	if hipster.NewStaticBig(spec).Name() != "static-big" {
		t.Fatal("static big")
	}
	if hipster.NewStaticSmall(spec).Name() != "static-small" {
		t.Fatal("static small")
	}
	if hipster.WorkloadByName("websearch") == nil {
		t.Fatal("workload lookup")
	}
	if got := len(hipster.SPEC2006()); got != 12 {
		t.Fatalf("SPEC programs = %d", got)
	}
	if _, ok := hipster.BatchProgramByName("lbm"); !ok {
		t.Fatal("program lookup")
	}
}

func TestCollocationFlow(t *testing.T) {
	spec := hipster.JunoR1()
	prog, _ := hipster.BatchProgramByName("calculix")
	runner, err := hipster.NewBatchRunner([]hipster.BatchProgram{prog})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := hipster.NewHipsterCo(spec, hipster.DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.WebSearch(),
		Pattern:  hipster.ConstantLoad{Frac: 0.3},
		Policy:   mgr,
		Batch:    runner,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MeanBatchIPS() <= 0 {
		t.Fatal("collocated run should report batch throughput")
	}
}

func TestCustomPatternViaFacade(t *testing.T) {
	spec := hipster.JunoR1()
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern: hipster.Ramp{
			From: 0.5, To: 1.0, RampSecs: 50, HoldSecs: 10,
		},
		Policy: hipster.NewStaticBig(spec),
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(0) // pattern supplies the horizon
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() != 60 {
		t.Fatalf("samples = %d", trace.Len())
	}
}
