package hipster_test

import (
	"errors"
	"strings"
	"testing"

	"hipster"
)

func TestQuickstartFlow(t *testing.T) {
	spec := hipster.JunoR1()
	mgr, err := hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern:  hipster.DefaultDiurnal(),
		Policy:   mgr,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() != 300 {
		t.Fatalf("samples = %d", trace.Len())
	}
	if q := trace.QoSGuarantee(); q < 0.5 {
		t.Fatalf("QoS guarantee %v implausible", q)
	}
	if trace.TotalEnergyJ() <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestFacadeConstructors(t *testing.T) {
	spec := hipster.JunoR1()
	if got := len(hipster.Configs(spec)); got != 13 {
		t.Fatalf("configs = %d", got)
	}
	if _, err := hipster.NewHipsterCo(spec, hipster.DefaultParams(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hipster.NewOctopusMan(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := hipster.NewHeuristicMapper(spec); err != nil {
		t.Fatal(err)
	}
	if hipster.NewStaticBig(spec).Name() != "static-big" {
		t.Fatal("static big")
	}
	if hipster.NewStaticSmall(spec).Name() != "static-small" {
		t.Fatal("static small")
	}
	if wl, err := hipster.WorkloadByName("websearch"); err != nil || wl == nil {
		t.Fatalf("workload lookup: %v", err)
	}
	if got := len(hipster.SPEC2006()); got != 12 {
		t.Fatalf("SPEC programs = %d", got)
	}
	if _, err := hipster.BatchProgramByName("lbm"); err != nil {
		t.Fatalf("program lookup: %v", err)
	}
}

// TestByNameConstructors sweeps every name-keyed constructor of the
// public API over every registered name, and checks that an unknown
// name yields the shared ErrUnknownName sentinel with the valid
// options listed in the message.
func TestByNameConstructors(t *testing.T) {
	cases := []struct {
		kind   string
		valid  []string
		lookup func(name string) error
	}{
		{"workload", []string{"memcached", "websearch"}, func(n string) error {
			_, err := hipster.WorkloadByName(n)
			return err
		}},
		{"splitter", []string{"round-robin", "weighted-by-capacity", "least-loaded"}, func(n string) error {
			_, err := hipster.SplitterByName(n)
			return err
		}},
		{"merge policy", []string{"visit-weighted", "max-confidence", "newest-wins"}, func(n string) error {
			_, err := hipster.MergePolicyByName(n)
			return err
		}},
		{"autoscale policy", []string{"target-utilization", "qos-headroom", "queue-depth"}, func(n string) error {
			_, err := hipster.AutoscalePolicyByName(n)
			return err
		}},
		{"mitigation", []string{"none", "hedged", "work-stealing"}, func(n string) error {
			_, err := hipster.MitigationByName(n)
			return err
		}},
		{"batch program", []string{
			"povray", "namd", "gromacs", "tonto", "sjeng", "calculix",
			"cactusADM", "lbm", "astar", "soplex", "libquantum", "zeusmp",
		}, func(n string) error {
			_, err := hipster.BatchProgramByName(n)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			for _, name := range tc.valid {
				if err := tc.lookup(name); err != nil {
					t.Errorf("registered name %q rejected: %v", name, err)
				}
			}
			err := tc.lookup("no-such-name")
			if !errors.Is(err, hipster.ErrUnknownName) {
				t.Fatalf("unknown name error = %v, want ErrUnknownName", err)
			}
			for _, name := range tc.valid {
				if !strings.Contains(err.Error(), name) {
					t.Errorf("error %q does not list the valid option %q", err, name)
				}
			}
		})
	}
}

// TestPolicyConstructors instantiates every policy constructor of the
// public API and steps each policy for a short horizon.
func TestPolicyConstructors(t *testing.T) {
	spec := hipster.JunoR1()
	wl := hipster.Memcached()
	cases := []struct {
		name  string
		build func() (hipster.Policy, error)
	}{
		{"hipster-in", func() (hipster.Policy, error) {
			return hipster.NewHipsterIn(spec, hipster.DefaultParams(), 1)
		}},
		{"hipster-co", func() (hipster.Policy, error) {
			return hipster.NewHipsterCo(spec, hipster.DefaultParams(), 1)
		}},
		{"octopus-man", func() (hipster.Policy, error) {
			return hipster.NewOctopusMan(spec)
		}},
		{"hipster-heuristic", func() (hipster.Policy, error) {
			return hipster.NewHeuristicMapper(spec)
		}},
		{"static-big", func() (hipster.Policy, error) {
			return hipster.NewStaticBig(spec), nil
		}},
		{"static-small", func() (hipster.Policy, error) {
			return hipster.NewStaticSmall(spec), nil
		}},
		{"oracle", func() (hipster.Policy, error) {
			return hipster.NewOracle(spec, wl, 0.05), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if pol.Name() == "" {
				t.Fatal("empty policy name")
			}
			sim, err := hipster.NewSimulation(hipster.SimOptions{
				Spec:     spec,
				Workload: wl,
				Pattern:  hipster.DefaultDiurnal(),
				Policy:   pol,
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			trace, err := sim.Run(60)
			if err != nil {
				t.Fatal(err)
			}
			if trace.Len() != 60 {
				t.Fatalf("samples = %d", trace.Len())
			}
		})
	}
}

// TestClusterFacade exercises the fleet layer end to end through the
// public API: heterogeneous nodes, a feedback splitter, and parallel
// stepping.
func TestClusterFacade(t *testing.T) {
	spec := hipster.JunoR1()
	nodes, err := hipster.UniformClusterNodes(4, spec, hipster.Memcached(),
		func(nodeID int) (hipster.Policy, error) {
			return hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42+int64(nodeID))
		})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := hipster.NewCluster(hipster.ClusterOptions{
		Nodes:    nodes,
		Pattern:  hipster.DefaultDiurnal(),
		Splitter: hipster.NewLeastLoadedSplitter(),
		Workers:  4,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Len() != 120 || len(res.Nodes) != 4 {
		t.Fatalf("fleet intervals = %d, node traces = %d", res.Fleet.Len(), len(res.Nodes))
	}
	sum := res.Summarize()
	if sum.QoSAttainment <= 0 || sum.TotalEnergyJ <= 0 {
		t.Fatalf("implausible fleet summary: %+v", sum)
	}
	for _, name := range []string{"round-robin", "weighted-by-capacity", "least-loaded"} {
		if _, err := hipster.SplitterByName(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterDESFacade(t *testing.T) {
	spec := hipster.JunoR1()
	nodes, err := hipster.UniformClusterDESNodes(4, spec, hipster.WebSearch())
	if err != nil {
		t.Fatal(err)
	}
	fl, err := hipster.NewClusterDES(hipster.ClusterDESOptions{
		Nodes:      nodes,
		Pattern:    hipster.ConstantLoad{Frac: 0.6},
		Splitter:   hipster.NewCapacitySplitter(),
		Mitigation: hipster.NewHedgedMitigation(0),
		Workers:    4,
		Seed:       42,
		Autoscale: &hipster.ClusterDESAutoscale{
			Policy:          hipster.NewQueueDepthPolicy(),
			MinNodes:        2,
			WarmupIntervals: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fl.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Len() != 60 || len(res.Nodes) != 4 {
		t.Fatalf("fleet intervals = %d, node traces = %d", res.Fleet.Len(), len(res.Nodes))
	}
	if res.Latency.Completed == 0 || res.Latency.P99 <= res.Latency.P50 {
		t.Fatalf("implausible latency summary: %+v", res.Latency)
	}
	sum := res.Summarize()
	if sum.QoSAttainment <= 0 || sum.TotalEnergyJ <= 0 {
		t.Fatalf("implausible fleet summary: %+v", sum)
	}
	if _, err := hipster.MitigationByName("work-stealing"); err != nil {
		t.Fatal(err)
	}
	if hipster.NewWorkStealingMitigation().Name() != "work-stealing" {
		t.Fatal("work-stealing constructor name mismatch")
	}
}

func TestFederatedClusterFacade(t *testing.T) {
	spec := hipster.JunoR1()
	nodes, err := hipster.UniformClusterNodes(4, spec, hipster.Memcached(),
		func(nodeID int) (hipster.Policy, error) {
			return hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42+int64(nodeID))
		})
	if err != nil {
		t.Fatal(err)
	}
	merge, err := hipster.MergePolicyByName("visit-weighted")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := hipster.NewCluster(hipster.ClusterOptions{
		Nodes:    nodes,
		Pattern:  hipster.DefaultDiurnal(),
		Splitter: hipster.NewCapacitySplitter(),
		Workers:  4,
		Seed:     42,
		Federation: &hipster.FederationOptions{
			SyncEvery:          5,
			Merge:              merge,
			StalenessIntervals: 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(60); err != nil {
		t.Fatal(err)
	}
	st, ok := cl.FederationStats()
	if !ok {
		t.Fatal("federation stats missing")
	}
	if st.Rounds != 12 || st.Reports != 48 || st.MergedVisits == 0 {
		t.Fatalf("federation stats = %+v", st)
	}
	for _, name := range []string{"visit-weighted", "max-confidence", "newest-wins"} {
		if _, err := hipster.MergePolicyByName(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := hipster.MergePolicyByName("nope"); err == nil {
		t.Fatal("want error for unknown merge policy name")
	}
}

// TestAutoscaledClusterFacade drives an elastic fleet end to end
// through the public API: the spiky day is served by a node set that
// follows the load, consuming fewer node-intervals than the roster
// would.
func TestAutoscaledClusterFacade(t *testing.T) {
	spec := hipster.JunoR1()
	nodes, err := hipster.UniformClusterNodes(6, spec, hipster.Memcached(),
		func(nodeID int) (hipster.Policy, error) {
			return hipster.NewHipsterIn(spec, hipster.DefaultParams(), 42+int64(nodeID))
		})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := hipster.AutoscalePolicyByName("target-utilization")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := hipster.NewCluster(hipster.ClusterOptions{
		Nodes:   nodes,
		Pattern: hipster.Spike{Base: 0.3, Peak: 0.8, EverySecs: 40, SpikeSecs: 10, Horizon: 120},
		Workers: 4,
		Seed:    42,
		Federation: &hipster.FederationOptions{
			SyncEvery: 5,
		},
		Autoscale: &hipster.AutoscaleOptions{
			Policy:             pol,
			MinNodes:           2,
			CooldownIntervals:  3,
			DownAfterIntervals: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := cl.AutoscaleStats()
	if !ok {
		t.Fatal("autoscale stats missing")
	}
	if st.Ups == 0 {
		t.Fatal("spiky load never scaled the fleet up")
	}
	if st.NodeIntervals >= 6*120 {
		t.Fatalf("elastic fleet consumed %d node-intervals, the static roster would use %d", st.NodeIntervals, 6*120)
	}
	if sum := res.Summarize(); sum.NodeIntervals != st.NodeIntervals {
		t.Fatalf("summary node-intervals %d != stats %d", sum.NodeIntervals, st.NodeIntervals)
	}
}

func TestCollocationFlow(t *testing.T) {
	spec := hipster.JunoR1()
	prog, _ := hipster.BatchProgramByName("calculix")
	runner, err := hipster.NewBatchRunner([]hipster.BatchProgram{prog})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := hipster.NewHipsterCo(spec, hipster.DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.WebSearch(),
		Pattern:  hipster.ConstantLoad{Frac: 0.3},
		Policy:   mgr,
		Batch:    runner,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MeanBatchIPS() <= 0 {
		t.Fatal("collocated run should report batch throughput")
	}
}

func TestCustomPatternViaFacade(t *testing.T) {
	spec := hipster.JunoR1()
	sim, err := hipster.NewSimulation(hipster.SimOptions{
		Spec:     spec,
		Workload: hipster.Memcached(),
		Pattern: hipster.Ramp{
			From: 0.5, To: 1.0, RampSecs: 50, HoldSecs: 10,
		},
		Policy: hipster.NewStaticBig(spec),
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sim.Run(0) // pattern supplies the horizon
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() != 60 {
		t.Fatalf("samples = %d", trace.Len())
	}
}
